// Shadow-tuner tests (PR 9, DESIGN.md §13): config validation, ghost-panel
// construction, the hysteresis switch rule, the ghost neighbor-list memory
// cap, replay determinism (same trace => same switch epochs, in isolation
// and through the full simulator), and a concurrency check for the TSan
// tier — live sharded cache traffic must never race the driver-thread
// ghost replay.

#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

#include "cache/shadow_tuner.hpp"
#include "data/presets.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace spider::cache {
namespace {

TunerConfig enabled_config() {
    TunerConfig config;
    config.enabled = true;
    return config;
}

TEST(TunerConfig_, ValidationGatesOnEnabled) {
    TunerConfig config;  // disabled
    config.ratio_grid = {2.0};
    EXPECT_NO_THROW(validate(config));  // knobs unchecked while off
    config.enabled = true;
    EXPECT_THROW(validate(config), std::invalid_argument);
}

TEST(TunerConfig_, RejectsOutOfRangeKnobs) {
    const auto expect_bad = [](auto mutate) {
        TunerConfig config = enabled_config();
        mutate(config);
        EXPECT_THROW(validate(config), std::invalid_argument);
    };
    EXPECT_NO_THROW(validate(enabled_config()));
    expect_bad([](TunerConfig& c) { c.ratio_grid.clear(); });
    expect_bad([](TunerConfig& c) { c.ratio_grid = {0.0}; });
    expect_bad([](TunerConfig& c) { c.ratio_grid = {1.5}; });
    expect_bad([](TunerConfig& c) { c.policy_grid.clear(); });
    expect_bad([](TunerConfig& c) { c.policy_grid = {PolicyKind::kRandom}; });
    expect_bad([](TunerConfig& c) { c.margin = -0.1; });
    expect_bad([](TunerConfig& c) { c.sustain_epochs = 0; });
    expect_bad([](TunerConfig& c) { c.max_neighbors = 0; });
}

TEST(ShadowTunerPanel, BuildsEveryGridPointExceptTheIncumbent) {
    TunerConfig config = enabled_config();
    config.ratio_grid = {0.5, 0.9};
    config.policy_grid = {PolicyKind::kSemantic, PolicyKind::kLru};
    const ShadowTuner tuner{config, /*total_capacity=*/40,
                            /*incumbent_ratio=*/0.9, PolicyKind::kSemantic};
    EXPECT_EQ(tuner.num_ghosts(), 3U);  // 2x2 grid minus the incumbent
    EXPECT_EQ(tuner.incumbent().imp_ratio, 0.9);
    EXPECT_EQ(tuner.incumbent().importance, PolicyKind::kSemantic);

    // An incumbent outside the grid shadows the full grid.
    const ShadowTuner off_grid{config, 40, 0.7, PolicyKind::kSemantic};
    EXPECT_EQ(off_grid.num_ghosts(), 4U);
}

TEST(ShadowTunerHysteresis, SwitchesOnlyAfterSustainedMargin) {
    TunerConfig config = enabled_config();
    config.ratio_grid = {0.5};
    config.margin = 0.05;
    config.sustain_epochs = 2;
    ShadowTuner tuner{config, 20, 0.9, PolicyKind::kSemantic};
    ASSERT_EQ(tuner.num_ghosts(), 1U);

    const auto feed_hot_epoch = [&] {
        // One id accessed repeatedly: first access admits, the rest hit,
        // so the ghost's epoch hit ratio is 0.99 (or 1.0 once resident).
        for (int i = 0; i < 100; ++i) tuner.on_access(5, 1.0);
    };

    feed_hot_epoch();
    ShadowTuner::Verdict v1 = tuner.end_epoch(/*incumbent_hit_ratio=*/0.1);
    EXPECT_FALSE(v1.switched);  // streak = 1 of 2
    EXPECT_GT(v1.best_hit_ratio, 0.9);
    EXPECT_EQ(v1.incumbent_hit_ratio, 0.1);
    EXPECT_GE(v1.shadow_hits, 99U);

    feed_hot_epoch();
    ShadowTuner::Verdict v2 = tuner.end_epoch(0.1);
    EXPECT_TRUE(v2.switched);
    ASSERT_TRUE(v2.winner.has_value());
    EXPECT_EQ(v2.winner->imp_ratio, 0.5);
    EXPECT_EQ(tuner.incumbent().imp_ratio, 0.5);
    EXPECT_EQ(tuner.total_switches(), 1U);

    // An empty epoch can never fire a switch (no accesses, no evidence).
    const ShadowTuner::Verdict v3 = tuner.end_epoch(0.0);
    EXPECT_FALSE(v3.switched);
    EXPECT_EQ(v3.shadow_hits, 0U);
}

TEST(ShadowTunerHysteresis, StreakResetsWhenTheMarginIsLost) {
    TunerConfig config = enabled_config();
    config.ratio_grid = {0.5};
    config.sustain_epochs = 2;
    ShadowTuner tuner{config, 20, 0.9, PolicyKind::kSemantic};

    const auto feed = [&] {
        for (int i = 0; i < 50; ++i) tuner.on_access(3, 1.0);
    };
    feed();
    EXPECT_FALSE(tuner.end_epoch(0.1).switched);  // streak 1
    feed();
    EXPECT_FALSE(tuner.end_epoch(0.99).switched);  // incumbent wins: reset
    feed();
    EXPECT_FALSE(tuner.end_epoch(0.1).switched);  // streak 1 again
    feed();
    EXPECT_TRUE(tuner.end_epoch(0.1).switched);  // streak 2 -> fire
    EXPECT_EQ(tuner.total_switches(), 1U);
}

TEST(ShadowTunerGhosts, NeighborListsAreCappedAtMaxNeighbors) {
    TunerConfig config = enabled_config();
    config.ratio_grid = {0.5};
    config.max_neighbors = 4;
    ShadowTuner tuner{config, 10, 0.9, PolicyKind::kSemantic};

    std::vector<std::uint32_t> neighbors;
    for (std::uint32_t n = 0; n < 10; ++n) neighbors.push_back(n);
    tuner.on_homophily_offer(100, neighbors);
    // Each neighbor accessed once: only the capped prefix can surrogate-hit
    // in the ghost, the rest miss (and get admitted as ordinary samples).
    for (std::uint32_t n = 0; n < 10; ++n) tuner.on_access(n, 0.5);
    const ShadowTuner::Verdict verdict = tuner.end_epoch(0.0);
    EXPECT_EQ(verdict.shadow_hits, 4U);
}

TEST(ShadowTunerDeterminism, SameTraceSameSwitchEpochs) {
    TunerConfig config = enabled_config();
    config.ratio_grid = {0.4, 0.8};
    config.policy_grid = {PolicyKind::kSemantic, PolicyKind::kLru};
    config.margin = 0.01;

    const auto run = [&config](std::uint64_t seed) {
        ShadowTuner tuner{config, 32, 0.9, PolicyKind::kSemantic};
        util::Rng rng{seed};
        std::vector<ShadowTuner::Verdict> verdicts;
        for (int epoch = 0; epoch < 12; ++epoch) {
            for (int op = 0; op < 400; ++op) {
                const auto id =
                    static_cast<std::uint32_t>(rng.uniform_index(80));
                const double score = rng.uniform();
                tuner.on_access(id, score);
                if (op % 7 == 0) tuner.on_score_update(id, score * 2.0);
                if (op % 23 == 0) {
                    const std::uint32_t nbrs[] = {id + 1, id + 2, id + 3};
                    tuner.on_homophily_offer(id, nbrs);
                }
            }
            verdicts.push_back(tuner.end_epoch(rng.uniform(0.0, 0.3)));
        }
        return verdicts;
    };

    const auto a = run(42);
    const auto b = run(42);
    ASSERT_EQ(a.size(), b.size());
    bool any_switch = false;
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].switched, b[i].switched) << "epoch " << i;
        EXPECT_EQ(a[i].shadow_hits, b[i].shadow_hits) << "epoch " << i;
        EXPECT_EQ(a[i].best_hit_ratio, b[i].best_hit_ratio) << "epoch " << i;
        EXPECT_EQ(a[i].winner.has_value(), b[i].winner.has_value());
        if (a[i].winner && b[i].winner) EXPECT_EQ(*a[i].winner, *b[i].winner);
        any_switch = any_switch || a[i].switched;
    }
    // The low incumbent ratios make a switch certain on this trace; a
    // never-switching run would leave the rule untested.
    EXPECT_TRUE(any_switch);
}

// TSan-tier check: worker threads hammer the live sharded cache while the
// driver thread replays the (already merged) stream into the tuner's
// private ghosts — the production threading shape at an epoch boundary.
TEST(ShadowConcurrent, GhostReplayDoesNotRaceLiveTraffic) {
    TwoLayerSemanticCache live{256, 0.8, /*shards=*/4};
    TunerConfig config = enabled_config();
    config.ratio_grid = {0.5, 0.8};
    ShadowTuner tuner{config, 256, 0.8, PolicyKind::kSemantic};

    std::vector<std::thread> workers;
    workers.reserve(4);
    for (unsigned t = 0; t < 4; ++t) {
        workers.emplace_back([&live, t] {
            util::Rng rng{100 + t};
            for (int op = 0; op < 4'000; ++op) {
                const auto id =
                    static_cast<std::uint32_t>(rng.uniform_index(1'000));
                if (live.lookup(id).kind == HitKind::kMiss) {
                    (void)live.on_miss_fetched(id, rng.uniform());
                } else {
                    live.update_importance_score(id, rng.uniform());
                }
            }
        });
    }
    util::Rng rng{9};
    for (int op = 0; op < 4'000; ++op) {
        const auto id = static_cast<std::uint32_t>(rng.uniform_index(1'000));
        tuner.on_access(id, rng.uniform());
        if (op % 500 == 499) (void)tuner.end_epoch(rng.uniform());
    }
    for (std::thread& w : workers) w.join();
    const ShadowTuner::Verdict final_verdict = tuner.end_epoch(0.5);
    EXPECT_GE(final_verdict.best_hit_ratio, 0.0);
    EXPECT_LE(final_verdict.best_hit_ratio, 1.0);
}

}  // namespace
}  // namespace spider::cache

// ------------------------------------------------------- sim integration

namespace spider::sim {
namespace {

SimConfig tuner_config() {
    SimConfig config;
    config.dataset = data::cifar10_like(/*scale=*/0.02, /*seed=*/7);
    config.strategy = StrategyKind::kSpider;
    config.epochs = 8;
    config.batch_size = 64;
    config.cache_fraction = 0.2;
    config.seed = 5;
    config.elastic_enabled = false;  // keep tuned ratios sticky
    config.tuner.enabled = true;
    config.tuner.ratio_grid = {0.3, 0.6, 0.9};
    config.tuner.margin = 0.005;
    config.tuner.sustain_epochs = 2;
    return config;
}

TEST(SimulatorTuner, RequiresASpiderStrategy) {
    SimConfig config = tuner_config();
    config.strategy = StrategyKind::kShade;
    TrainingSimulator sim{config};
    EXPECT_THROW(sim.run(), std::invalid_argument);
}

TEST(SimulatorTuner, RunsDeterministicallyAndReportsMetrics) {
    const auto run = [] {
        SimConfig config = tuner_config();
        TrainingSimulator sim{config};
        return sim.run();
    };
    const metrics::RunResult a = run();
    const metrics::RunResult b = run();
    ASSERT_EQ(a.epochs.size(), 8U);
    ASSERT_EQ(b.epochs.size(), 8U);
    std::uint64_t shadow_hits_total = 0;
    for (std::size_t i = 0; i < a.epochs.size(); ++i) {
        EXPECT_EQ(a.epochs[i].hits, b.epochs[i].hits) << "epoch " << i;
        EXPECT_EQ(a.epochs[i].shadow_hits, b.epochs[i].shadow_hits)
            << "epoch " << i;
        EXPECT_EQ(a.epochs[i].tuner_switches, b.epochs[i].tuner_switches)
            << "epoch " << i;
        EXPECT_EQ(a.epochs[i].imp_ratio, b.epochs[i].imp_ratio)
            << "epoch " << i;
        shadow_hits_total += a.epochs[i].shadow_hits;
    }
    // The ghosts replay real traffic: the best shadow must register hits.
    EXPECT_GT(shadow_hits_total, 0U);
}

TEST(SimulatorTuner, DisabledTunerLeavesMetricsColumnsZero) {
    SimConfig config = tuner_config();
    config.tuner.enabled = false;
    TrainingSimulator sim{config};
    const metrics::RunResult result = sim.run();
    for (const auto& epoch : result.epochs) {
        EXPECT_EQ(epoch.shadow_hits, 0U);
        EXPECT_EQ(epoch.tuner_switches, 0U);
    }
}

}  // namespace
}  // namespace spider::sim
