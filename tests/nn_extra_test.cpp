// Tests for the nn extensions: Dropout layer semantics (train/eval modes,
// inverted scaling, mask-consistent backward, expectation preservation)
// and the gradient-norm importance sampler.

#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "core/samplers.hpp"
#include "nn/layers.hpp"
#include "nn/mlp_classifier.hpp"

namespace spider::nn {
namespace {

TEST(Dropout, EvalModeIsIdentity) {
    Dropout layer{0.5, util::Rng{1}};
    layer.set_training(false);
    tensor::Matrix x{4, 8};
    util::Rng rng{2};
    x.randomize_normal(rng, 0.0F, 1.0F);
    tensor::Matrix y;
    layer.forward(x, y);
    for (std::size_t i = 0; i < x.size(); ++i) {
        EXPECT_FLOAT_EQ(y.flat()[i], x.flat()[i]);
    }
}

TEST(Dropout, ZeroProbabilityIsIdentityInTraining) {
    Dropout layer{0.0, util::Rng{3}};
    tensor::Matrix x{2, 4, 3.0F};
    tensor::Matrix y;
    layer.forward(x, y);
    for (float v : y.flat()) EXPECT_FLOAT_EQ(v, 3.0F);
}

TEST(Dropout, TrainingDropsAndRescales) {
    const double p = 0.5;
    Dropout layer{p, util::Rng{5}};
    tensor::Matrix x{100, 100, 1.0F};
    tensor::Matrix y;
    layer.forward(x, y);

    std::size_t zeros = 0;
    double sum = 0.0;
    for (float v : y.flat()) {
        if (v == 0.0F) {
            ++zeros;
        } else {
            EXPECT_FLOAT_EQ(v, 2.0F);  // 1 / (1 - 0.5)
        }
        sum += v;
    }
    const double n = static_cast<double>(y.size());
    EXPECT_NEAR(static_cast<double>(zeros) / n, p, 0.02);
    // Inverted dropout preserves the expectation.
    EXPECT_NEAR(sum / n, 1.0, 0.05);
}

TEST(Dropout, BackwardUsesSameMask) {
    Dropout layer{0.5, util::Rng{7}};
    tensor::Matrix x{10, 10, 1.0F};
    tensor::Matrix y;
    layer.forward(x, y);
    tensor::Matrix dy{10, 10, 1.0F};
    tensor::Matrix dx;
    layer.backward(dy, dx);
    // Gradient flows exactly where activations survived.
    for (std::size_t i = 0; i < y.size(); ++i) {
        EXPECT_FLOAT_EQ(dx.flat()[i], y.flat()[i]);
    }
}

TEST(Dropout, RejectsInvalidProbability) {
    EXPECT_THROW((Dropout{1.0, util::Rng{1}}), std::invalid_argument);
    EXPECT_THROW((Dropout{-0.1, util::Rng{1}}), std::invalid_argument);
}

TEST(Dropout, MlpClassifierTrainsWithDropout) {
    MlpConfig config;
    config.input_dim = 2;
    config.hidden_dims = {16, 8};
    config.num_classes = 2;
    config.dropout = 0.2;
    config.seed = 11;
    MlpClassifier model{config};

    util::Rng rng{13};
    tensor::Matrix x{64, 2};
    std::vector<std::uint32_t> labels(64);
    for (std::size_t i = 0; i < 64; ++i) {
        const std::uint32_t cls = i % 2;
        x.at(i, 0) = static_cast<float>(rng.normal(cls ? 2.0 : -2.0, 0.5));
        x.at(i, 1) = static_cast<float>(rng.normal(cls ? -2.0 : 2.0, 0.5));
        labels[i] = cls;
    }
    for (int step = 0; step < 80; ++step) {
        model.forward(x, labels);
        model.backward_and_step(labels);
    }
    // Eval-mode accuracy (dropout off) on the training data.
    EXPECT_GT(model.evaluate(x, labels), 0.9);
    // Two eval calls are deterministic (no stochastic masks in eval).
    EXPECT_DOUBLE_EQ(model.evaluate(x, labels), model.evaluate(x, labels));
}

}  // namespace
}  // namespace spider::nn

namespace spider::core {
namespace {

TEST(GradientNormSampler, InitiallyUniform) {
    GradientNormSampler sampler{100, util::Rng{17}};
    for (std::uint32_t i = 0; i < 100; ++i) {
        EXPECT_DOUBLE_EQ(sampler.importance_of(i), 1.0);
    }
    const auto order = sampler.epoch_order(0);
    EXPECT_EQ(order.size(), 100U);
}

TEST(GradientNormSampler, EmaTracksObservations) {
    GradientNormSampler sampler{10, util::Rng{19}, /*smoothing=*/0.5};
    sampler.observe_losses(std::vector<std::uint32_t>{3},
                           std::vector<double>{5.0});
    // EMA: 0.5 * 1.0 + 0.5 * 5.0 = 3.0.
    EXPECT_DOUBLE_EQ(sampler.importance_of(3), 3.0);
    sampler.observe_losses(std::vector<std::uint32_t>{3},
                           std::vector<double>{5.0});
    EXPECT_DOUBLE_EQ(sampler.importance_of(3), 4.0);
}

TEST(GradientNormSampler, DrawsSkewTowardHighNorms) {
    GradientNormSampler sampler{4, util::Rng{23}, 1.0};
    sampler.observe_losses(std::vector<std::uint32_t>{0, 1, 2, 3},
                           std::vector<double>{0.1, 0.1, 0.1, 9.7});
    std::map<std::uint32_t, int> counts;
    for (int rep = 0; rep < 500; ++rep) {
        for (std::uint32_t id : sampler.epoch_order(0)) ++counts[id];
    }
    // Weights 0.1/0.1/0.1/9.7 -> id 3 drawn ~97% of the time.
    EXPECT_GT(counts[3], counts[0] * 10);
}

TEST(GradientNormSampler, ZeroNormsClampedPositive) {
    GradientNormSampler sampler{2, util::Rng{29}, 1.0};
    sampler.observe_losses(std::vector<std::uint32_t>{0, 1},
                           std::vector<double>{0.0, 0.0});
    EXPECT_GT(sampler.importance_of(0), 0.0);
    // Sampling still works (alias table needs positive mass).
    EXPECT_EQ(sampler.epoch_order(0).size(), 2U);
}

TEST(GradientNormSampler, RejectsBadSmoothing) {
    EXPECT_THROW((GradientNormSampler{4, util::Rng{1}, 0.0}),
                 std::invalid_argument);
    EXPECT_THROW((GradientNormSampler{4, util::Rng{1}, 1.5}),
                 std::invalid_argument);
}

}  // namespace
}  // namespace spider::core
