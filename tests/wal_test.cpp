// Residency WAL suite (DESIGN.md §12): on-disk framing round trips, torn
// tails end replay without poisoning the prefix, kill -9 loses exactly the
// unflushed buffer, fold() implements the section semantics (last-writer
// importance, FIFO homophily, LRU ssd), and a listener-streamed cache can
// be rebuilt warm — including across a shard-count change.

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "cache/semantic_cache.hpp"
#include "storage/ssd_tier.hpp"
#include "storage/wal.hpp"

namespace spider {
namespace {

using cache::ResidencyOp;
using cache::ResidencyRecord;
using cache::RestoreImage;

class WalTest : public ::testing::Test {
protected:
    void SetUp() override {
        dir_ = std::filesystem::temp_directory_path() /
               ("spider_wal_test_" + std::to_string(::getpid()) + "_" +
                ::testing::UnitTest::GetInstance()
                    ->current_test_info()
                    ->name());
        std::filesystem::remove_all(dir_);
    }
    void TearDown() override { std::filesystem::remove_all(dir_); }

    [[nodiscard]] storage::WalConfig config(bool sync = false) const {
        return {.enabled = true, .dir = dir_.string(),
                .sync_every_append = sync};
    }

    std::filesystem::path dir_;
};

ResidencyRecord admit(std::uint32_t id, double score) {
    return {.op = ResidencyOp::kAdmitImportance, .id = id, .score = score};
}

TEST_F(WalTest, DisabledWalIsANoOp) {
    storage::CacheWal wal{storage::WalConfig{}};
    wal.append(admit(1, 0.5));
    wal.flush();
    EXPECT_TRUE(wal.load().empty());
    EXPECT_EQ(wal.appended_records(), 0U);
}

TEST_F(WalTest, AppendFlushLoadRoundTripsAllRecordKinds) {
    storage::CacheWal wal{config()};
    wal.append(admit(3, 0.25));
    wal.append(admit(7, 0.75));
    wal.append({.op = ResidencyOp::kScoreUpdate, .id = 3, .score = 0.9});
    wal.append({.op = ResidencyOp::kAdmitHomophily,
                .id = 11,
                .generation = 42,
                .neighbors = {12, 13, 14}});
    wal.append({.op = ResidencyOp::kSsdInsert, .id = 21});
    wal.flush();

    const RestoreImage image = wal.load();
    ASSERT_EQ(image.importance.size(), 2U);
    // Deterministic order: sorted by id after the last-writer fold.
    EXPECT_EQ(image.importance[0].first, 3U);
    EXPECT_DOUBLE_EQ(image.importance[0].second, 0.9);  // score update won
    EXPECT_EQ(image.importance[1].first, 7U);
    ASSERT_EQ(image.homophily.size(), 1U);
    EXPECT_EQ(image.homophily[0].first, 11U);
    EXPECT_EQ(image.homophily[0].second,
              (std::vector<std::uint32_t>{12, 13, 14}));
    EXPECT_EQ(image.ssd, (std::vector<std::uint32_t>{21}));
    EXPECT_EQ(wal.dropped_records(), 0U);
}

TEST_F(WalTest, KillLosesExactlyTheUnflushedTail) {
    storage::CacheWal wal{config()};
    wal.append(admit(1, 0.1));
    wal.flush();
    wal.append(admit(2, 0.2));  // buffered, never flushed
    wal.drop_unflushed();       // kill -9
    const RestoreImage image = wal.load();
    ASSERT_EQ(image.importance.size(), 1U);
    EXPECT_EQ(image.importance[0].first, 1U);
}

TEST_F(WalTest, SyncEveryAppendSurvivesTheKill) {
    storage::CacheWal wal{config(/*sync=*/true)};
    wal.append(admit(1, 0.1));
    wal.append(admit(2, 0.2));
    wal.drop_unflushed();
    EXPECT_EQ(wal.load().importance.size(), 2U);
}

TEST_F(WalTest, TornTailEndsReplayButKeepsThePrefix) {
    {
        storage::CacheWal wal{config()};
        for (std::uint32_t id = 0; id < 10; ++id) {
            wal.append(admit(id, 0.1 * id));
        }
        wal.flush();
    }
    // Tear the last record: chop a few bytes off the log file, the way an
    // unclean death mid-write leaves it.
    const auto log = dir_ / "cache.wal";
    const auto size = std::filesystem::file_size(log);
    std::filesystem::resize_file(log, size - 5);

    storage::CacheWal wal{config()};
    const RestoreImage image = wal.load();
    EXPECT_EQ(image.importance.size(), 9U);
    EXPECT_EQ(wal.dropped_records(), 1U);
}

TEST_F(WalTest, CorruptChecksumStopsReplayAtTheDamage) {
    {
        storage::CacheWal wal{config()};
        for (std::uint32_t id = 0; id < 10; ++id) {
            wal.append(admit(id, 0.1));
        }
        wal.flush();
    }
    // Flip one payload byte in the middle of the file.
    const auto log = dir_ / "cache.wal";
    std::fstream f{log, std::ios::in | std::ios::out | std::ios::binary};
    const auto size = std::filesystem::file_size(log);
    f.seekp(static_cast<std::streamoff>(size / 2));
    const char bad = '\xFF';
    f.write(&bad, 1);
    f.close();

    storage::CacheWal wal{config()};
    const RestoreImage image = wal.load();
    EXPECT_LT(image.importance.size(), 10U);
    EXPECT_EQ(wal.dropped_records(), 1U);
}

TEST_F(WalTest, CompactReplacesSnapshotAndTruncatesTheLog) {
    storage::CacheWal wal{config()};
    for (std::uint32_t id = 0; id < 5; ++id) wal.append(admit(id, 0.1));
    RestoreImage snapshot;
    snapshot.importance = {{100, 1.0}, {101, 2.0}};
    snapshot.ssd = {200, 201};
    wal.compact(snapshot);
    // Pre-compaction records are gone; the snapshot is the new base, and
    // later appends fold on top of it.
    wal.append(admit(102, 3.0));
    wal.append({.op = ResidencyOp::kEvictImportance, .id = 100});
    wal.flush();
    const RestoreImage image = wal.load();
    ASSERT_EQ(image.importance.size(), 2U);
    EXPECT_EQ(image.importance[0].first, 101U);
    EXPECT_EQ(image.importance[1].first, 102U);
    EXPECT_EQ(image.ssd, (std::vector<std::uint32_t>{200, 201}));
}

TEST_F(WalTest, FoldImplementsSectionSemantics) {
    std::vector<ResidencyRecord> records;
    // Importance: last writer wins, evict removes.
    records.push_back(admit(1, 0.1));
    records.push_back(admit(2, 0.2));
    records.push_back({.op = ResidencyOp::kScoreUpdate, .id = 1, .score = 0.9});
    records.push_back({.op = ResidencyOp::kEvictImportance, .id = 2});
    // Homophily: FIFO order; re-admitting moves the key to the back.
    records.push_back({.op = ResidencyOp::kAdmitHomophily, .id = 10,
                       .neighbors = {11}});
    records.push_back({.op = ResidencyOp::kAdmitHomophily, .id = 20,
                       .neighbors = {21}});
    records.push_back({.op = ResidencyOp::kAdmitHomophily, .id = 10,
                       .neighbors = {12}});
    // Ssd: LRU order; re-insert is a recency touch.
    records.push_back({.op = ResidencyOp::kSsdInsert, .id = 30});
    records.push_back({.op = ResidencyOp::kSsdInsert, .id = 31});
    records.push_back({.op = ResidencyOp::kSsdInsert, .id = 30});
    records.push_back({.op = ResidencyOp::kSsdInsert, .id = 32});
    records.push_back({.op = ResidencyOp::kSsdEvict, .id = 31});

    const RestoreImage image =
        storage::CacheWal::fold(RestoreImage{}, records);
    ASSERT_EQ(image.importance.size(), 1U);
    EXPECT_EQ(image.importance[0].first, 1U);
    EXPECT_DOUBLE_EQ(image.importance[0].second, 0.9);
    ASSERT_EQ(image.homophily.size(), 2U);
    EXPECT_EQ(image.homophily[0].first, 20U);  // 10 moved to the back
    EXPECT_EQ(image.homophily[1].first, 10U);
    EXPECT_EQ(image.homophily[1].second, (std::vector<std::uint32_t>{12}));
    EXPECT_EQ(image.ssd, (std::vector<std::uint32_t>{30, 32}));
}

// ------------------------------------------------- warm restart, end to end

TEST_F(WalTest, ListenerStreamedCacheRebuildsWarmAcrossShardCountChange) {
    storage::CacheWal wal{config()};
    const cache::ResidencyListener listener =
        [&wal](const ResidencyRecord& rec) { wal.append(rec); };

    cache::TwoLayerSemanticCache before{64, 0.5, /*shards=*/1};
    before.set_residency_listener(listener);
    for (std::uint32_t id = 0; id < 200; ++id) {
        before.on_miss_fetched(id, 0.001 * id);
    }
    for (std::uint32_t key = 300; key < 320; ++key) {
        const std::uint32_t nb[] = {key + 1, key + 2};
        before.update_homophily(key, nb);
    }
    wal.flush();
    const std::size_t pre =
        before.importance_size() + before.homophily_size();
    ASSERT_GT(pre, 0U);

    wal.drop_unflushed();  // kill -9 (everything relevant already flushed)
    cache::TwoLayerSemanticCache after{64, 0.5, /*shards=*/4};
    const std::size_t restored = after.restore_from_wal(wal.load());
    EXPECT_GE(restored * 2, pre);  // the chaos-harness recovery bar
    EXPECT_EQ(after.importance_size(), before.importance_size());
    EXPECT_EQ(after.homophily_size(), before.homophily_size());
    // The most important ids survived the restore's capacity filter.
    for (std::uint32_t id = 190; id < 200; ++id) {
        EXPECT_NE(after.lookup(id).kind, cache::HitKind::kMiss) << id;
    }
}

TEST_F(WalTest, SsdRestoreIntoSmallerTierStreamsEvictions) {
    // Regression: restore() must report the evictions it performs while
    // replaying into a smaller tier, or the post-restart WAL silently
    // drifts from true residency and the next restart resurrects ids the
    // tier no longer holds.
    storage::CacheWal wal{config()};
    storage::SsdTier before{storage::SsdTierConfig{.enabled = true,
                                                   .capacity_items = 8}};
    before.set_residency_listener(
        [&wal](const ResidencyRecord& rec) { wal.append(rec); });
    for (std::uint32_t id = 0; id < 12; ++id) before.insert(id);
    wal.flush();

    // Restart into a tier half the size, listener attached BEFORE
    // restore — the simulator's order. Replay must evict 4 ids and
    // stream those evictions back into the same log so the fold
    // converges to the live tier.
    const RestoreImage image = wal.load();
    storage::SsdTier after{storage::SsdTierConfig{.enabled = true,
                                                  .capacity_items = 4}};
    after.set_residency_listener(
        [&wal](const ResidencyRecord& rec) { wal.append(rec); });
    EXPECT_EQ(after.restore(image.ssd), 4U);
    wal.flush();

    // The WAL's fold now matches the live tier exactly; a second
    // restart would not resurrect the evicted ids.
    EXPECT_EQ(wal.load().ssd, after.dump_residency());
    EXPECT_EQ(after.resident_items(), 4U);
}

TEST_F(WalTest, SsdTierRoundTripsThroughListenerAndRestore) {
    storage::CacheWal wal{config()};
    storage::SsdTier before{storage::SsdTierConfig{.enabled = true,
                                                   .capacity_items = 8}};
    before.set_residency_listener(
        [&wal](const ResidencyRecord& rec) { wal.append(rec); });
    for (std::uint32_t id = 0; id < 12; ++id) before.insert(id);  // evicts 0-3
    wal.flush();

    storage::SsdTier after{storage::SsdTierConfig{.enabled = true,
                                                  .capacity_items = 8}};
    const RestoreImage image = wal.load();
    EXPECT_EQ(after.restore(image.ssd), 8U);
    EXPECT_EQ(after.dump_residency(), before.dump_residency());
    // Same recency horizon: the next insert evicts the same victim.
    before.insert(100);
    after.insert(100);
    EXPECT_EQ(after.dump_residency(), before.dump_residency());
}

}  // namespace
}  // namespace spider
