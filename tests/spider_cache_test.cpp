// SpiderCache facade tests: the Algorithm 1 wiring — lookup/admission flow,
// per-batch graph and score maintenance, homophily updates from the
// highest-degree node, elastic repartitioning at epoch boundaries, and the
// ablation switches (homophily off, elastic off).

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "core/spider_cache.hpp"
#include "data/dataset.hpp"

namespace spider::core {
namespace {

/// Two well-separated clusters of trivially distinguishable "embeddings"
/// we can feed into observe_batch directly.
class SpiderCacheTest : public ::testing::Test {
protected:
    static constexpr std::size_t kN = 40;
    static constexpr std::size_t kDim = 4;

    SpiderCacheConfig base_config() {
        SpiderCacheConfig config;
        config.dataset_size = kN;
        config.label_of = [](std::uint32_t id) { return id % 2; };
        config.cache_items = 10;
        config.embedding_dim = kDim;
        config.total_epochs = 10;
        config.seed = 77;
        return config;
    }

    /// Embedding for sample id: class 0 near (1,0,..), class 1 near
    /// (0,1,..), with a small per-id offset. The last four ids are made
    /// "hard": two boundary points between the clusters and two points
    /// embedded inside the wrong cluster, so scores are diverse.
    static std::vector<float> embedding_of(std::uint32_t id) {
        std::vector<float> e(kDim, 0.0F);
        if (id == 36 || id == 37) {  // boundary: between the clusters
            e[0] = 0.7F;
            e[1] = 0.7F;
            e[2] = id == 36 ? 0.05F : -0.05F;
            return e;
        }
        if (id == 38) {  // class 0 sample sitting in the class 1 cluster
            e[1] = 1.0F;
            return e;
        }
        if (id == 39) {  // class 1 sample sitting in the class 0 cluster
            e[0] = 1.0F;
            return e;
        }
        const float jitter = 0.01F * static_cast<float>(id);
        if (id % 2 == 0) {
            e[0] = 1.0F;
            e[2] = jitter;
        } else {
            e[1] = 1.0F;
            e[3] = jitter;
        }
        return e;
    }

    static void observe_all(SpiderCache& spider) {
        std::vector<std::uint32_t> ids(kN);
        tensor::Matrix embeddings{kN, kDim};
        for (std::uint32_t i = 0; i < kN; ++i) {
            ids[i] = i;
            const auto e = embedding_of(i);
            std::copy(e.begin(), e.end(), embeddings.row(i).begin());
        }
        spider.observe_batch(ids, embeddings);
    }
};

TEST_F(SpiderCacheTest, RejectsInvalidConfig) {
    SpiderCacheConfig no_size = base_config();
    no_size.dataset_size = 0;
    EXPECT_THROW(SpiderCache{no_size}, std::invalid_argument);

    SpiderCacheConfig no_labels = base_config();
    no_labels.label_of = nullptr;
    EXPECT_THROW(SpiderCache{no_labels}, std::invalid_argument);
}

TEST_F(SpiderCacheTest, ColdLookupMissesAndAdmits) {
    SpiderCache spider{base_config()};
    const cache::Lookup lookup = spider.lookup(0);
    EXPECT_EQ(lookup.kind, cache::HitKind::kMiss);
    const auto result = spider.on_miss_fetched(0);
    EXPECT_TRUE(result.admitted);  // cache not yet full
    EXPECT_EQ(spider.lookup(0).kind, cache::HitKind::kImportance);
}

TEST_F(SpiderCacheTest, ObserveBatchPopulatesScores) {
    SpiderCache spider{base_config()};
    observe_all(spider);
    const auto scores = spider.scores();
    ASSERT_EQ(scores.size(), kN);
    // All samples scored (> 0: at minimum ln(2) for isolated, less for
    // clustered — but never exactly the initial 0).
    for (double s : scores) {
        EXPECT_GT(s, 0.0);
    }
    EXPECT_GT(spider.score_std(), 0.0);
}

TEST_F(SpiderCacheTest, ScoresFiniteAndBoundedByFormula) {
    SpiderCache spider{base_config()};
    observe_all(spider);
    // Eq. 4 maximum: ln(1/1 + k/neighbor_max + 1) with x_same = 1.
    const double upper =
        std::log(2.0 + static_cast<double>(spider.scorer().config().neighbor_k) /
                           static_cast<double>(
                               spider.scorer().config().neighbor_max));
    for (double s : spider.scores()) {
        EXPECT_LE(s, upper + 1e-9);
        EXPECT_GE(s, 0.0);
    }
}

TEST_F(SpiderCacheTest, HomophilyUpdatedWithHighDegreeNode) {
    SpiderCache spider{base_config()};
    observe_all(spider);
    // The clusters are tight: some node collected close neighbors and was
    // offered to the homophily section.
    EXPECT_GT(spider.cache().homophily().size(), 0U);
}

TEST_F(SpiderCacheTest, HomophilyDisabledAblation) {
    SpiderCacheConfig config = base_config();
    config.homophily_enabled = false;
    SpiderCache spider{config};
    observe_all(spider);
    EXPECT_EQ(spider.cache().homophily().size(), 0U);
    // The whole capacity belongs to the importance section.
    EXPECT_EQ(spider.cache().importance().capacity(), config.cache_items);
}

TEST_F(SpiderCacheTest, EpochOrderHasDatasetLength) {
    SpiderCache spider{base_config()};
    const auto order = spider.epoch_order();
    EXPECT_EQ(order.size(), kN);
    for (std::uint32_t id : order) {
        EXPECT_LT(id, kN);
    }
}

TEST_F(SpiderCacheTest, EpochOrderSkewsTowardHighScores) {
    SpiderCacheConfig config = base_config();
    config.sampler_uniform_floor = 0.01;
    SpiderCache spider{config};
    observe_all(spider);
    // Find the max-score sample and count its draws over many epochs.
    const auto scores = spider.scores();
    const std::size_t argmax =
        std::max_element(scores.begin(), scores.end()) - scores.begin();
    const std::size_t argmin =
        std::min_element(scores.begin(), scores.end()) - scores.begin();
    std::size_t max_draws = 0;
    std::size_t min_draws = 0;
    for (int rep = 0; rep < 50; ++rep) {
        for (std::uint32_t id : spider.epoch_order()) {
            if (id == argmax) ++max_draws;
            if (id == argmin) ++min_draws;
        }
    }
    EXPECT_GT(max_draws, min_draws);
}

TEST_F(SpiderCacheTest, FlatScoreSpreadNeverActivatesElastic) {
    // Eq. 5: beta latches only on a strictly negative spread slope. With
    // the same batch observed every epoch the spread is constant, so the
    // ratio must hold at r_start.
    SpiderCacheConfig config = base_config();
    config.elastic.slope_window = 2;
    config.total_epochs = 6;
    SpiderCache spider{config};
    double ratio = 1.0;
    for (int epoch = 0; epoch < 6; ++epoch) {
        observe_all(spider);
        ratio = spider.end_epoch(0.7);
    }
    EXPECT_FALSE(spider.elastic().activated());
    EXPECT_DOUBLE_EQ(ratio, config.elastic.r_start);
    EXPECT_EQ(spider.current_epoch(), 6U);
}

TEST_F(SpiderCacheTest, DecliningScoreSpreadActivatesAndShrinksRatio) {
    // Epoch 0 scores only the four hard samples (all high, wide spread);
    // later epochs score the full dataset, whose mass of identical
    // well-classified scores pulls the spread down. The negative slope
    // latches beta and the ratio moves below r_start by the final epoch.
    SpiderCacheConfig config = base_config();
    config.elastic.slope_window = 2;
    config.elastic.gamma = 1.0;  // flat accuracy -> penalty ~ 0
    config.total_epochs = 5;
    SpiderCache spider{config};

    // Epoch 0: the raw geometry, hard samples misplaced -> wide spread.
    observe_all(spider);
    spider.end_epoch(0.7);

    // Later epochs: "training converged" — every sample now embeds inside
    // its own class cluster, so all scores collapse to the same low value.
    std::vector<std::uint32_t> ids(kN);
    tensor::Matrix converged{kN, kDim};
    for (std::uint32_t i = 0; i < kN; ++i) {
        ids[i] = i;
        std::vector<float> e(kDim, 0.0F);
        e[i % 2] = 1.0F;
        e[2 + i % 2] = 0.01F * static_cast<float>(i);
        std::copy(e.begin(), e.end(), converged.row(i).begin());
    }
    double ratio = 1.0;
    for (int epoch = 1; epoch < 5; ++epoch) {
        spider.observe_batch(ids, converged);
        ratio = spider.end_epoch(0.7);
    }
    EXPECT_TRUE(spider.elastic().activated());
    EXPECT_LT(ratio, config.elastic.r_start);
    EXPECT_GE(ratio, config.elastic.r_end - 1e-9);
}

TEST_F(SpiderCacheTest, ElasticDisabledKeepsStaticRatio) {
    SpiderCacheConfig config = base_config();
    config.elastic_enabled = false;
    SpiderCache spider{config};
    observe_all(spider);
    for (int epoch = 0; epoch < 5; ++epoch) {
        spider.end_epoch(0.7);
    }
    EXPECT_DOUBLE_EQ(spider.imp_ratio(), config.elastic.r_start);
}

TEST_F(SpiderCacheTest, ResidentScoresRefreshOnObserve) {
    SpiderCache spider{base_config()};
    // Admit sample 0 with its default (zero) score.
    spider.on_miss_fetched(0);
    ASSERT_TRUE(spider.cache().importance().contains(0));
    EXPECT_DOUBLE_EQ(*spider.cache().importance().score_of(0), 0.0);
    observe_all(spider);
    // After the batch, the resident entry carries the fresh graph score.
    EXPECT_GT(*spider.cache().importance().score_of(0), 0.0);
}

TEST_F(SpiderCacheTest, ObserveBatchValidatesShapes) {
    SpiderCache spider{base_config()};
    const std::vector<std::uint32_t> ids = {0, 1};
    tensor::Matrix wrong{3, kDim};
    EXPECT_THROW(spider.observe_batch(ids, wrong), std::invalid_argument);
}

TEST_F(SpiderCacheTest, SurrogateServedForClusterNeighbor) {
    SpiderCacheConfig config = base_config();
    config.cache_items = 20;
    // Generous homophily section.
    config.elastic.r_start = 0.5;
    config.elastic.r_end = 0.5;
    SpiderCache spider{config};
    // Several rounds so multiple high-degree nodes enter the section.
    for (int round = 0; round < 8; ++round) {
        observe_all(spider);
    }
    // Some cluster member must now be servable by a surrogate: count
    // homophily lookups across all ids.
    std::size_t homophily_served = 0;
    for (std::uint32_t id = 0; id < kN; ++id) {
        if (spider.lookup(id).kind == cache::HitKind::kHomophily) {
            ++homophily_served;
        }
    }
    EXPECT_GT(homophily_served, 0U);
}

}  // namespace
}  // namespace spider::core
