// Training-simulator tests: strategy frontends behave per spec, metrics
// accounting is consistent, every strategy runs end to end, key orderings
// from the paper hold on a small workload, and the multi-GPU model scales.

#include <gtest/gtest.h>

#include <filesystem>
#include <memory>
#include <stdexcept>

#include "data/presets.hpp"
#include "sim/frontend.hpp"
#include "sim/simulator.hpp"
#include "sim/strategy.hpp"

namespace spider::sim {
namespace {

SimConfig small_config(StrategyKind strategy) {
    SimConfig config;
    config.dataset = data::cifar10_like(/*scale=*/0.02, /*seed=*/7);  // 1000
    config.strategy = strategy;
    config.epochs = 8;
    config.batch_size = 64;
    config.cache_fraction = 0.2;
    config.seed = 5;
    return config;
}

TEST(Strategy, NamesAndPredicates) {
    EXPECT_STREQ(to_string(StrategyKind::kBaselineLru), "Baseline");
    EXPECT_STREQ(to_string(StrategyKind::kSpider), "SpiderCache");
    EXPECT_TRUE(uses_graph_is(StrategyKind::kSpider));
    EXPECT_TRUE(uses_graph_is(StrategyKind::kSpiderImp));
    EXPECT_FALSE(uses_graph_is(StrategyKind::kShade));
    EXPECT_TRUE(uses_importance_sampling(StrategyKind::kShade));
    EXPECT_FALSE(uses_importance_sampling(StrategyKind::kCoorDL));
}

TEST(PolicyFrontend, HitAfterAdmission) {
    PolicyFrontend frontend{std::make_unique<cache::LruCache>(4)};
    const Access first = frontend.access(1);
    EXPECT_FALSE(first.hit);
    EXPECT_EQ(first.served_id, 1U);
    const Access second = frontend.access(1);
    EXPECT_TRUE(second.hit);
    EXPECT_EQ(frontend.resident_items(), 1U);
}

TEST(ShadeFrontend, AdmitsByRankWeight) {
    core::ShadeSampler sampler{10, util::Rng{1}};
    ShadeFrontend frontend{2, sampler};
    // Teach the sampler: 0 and 1 hard, 2 easy.
    sampler.observe_losses(std::vector<std::uint32_t>{0, 1, 2},
                           std::vector<double>{3.0, 2.0, 0.1});
    frontend.access(0);
    frontend.access(1);  // cache now full with weights 1.0 and 2/3
    EXPECT_EQ(frontend.resident_items(), 2U);
    // Easy sample (weight 1/3) cannot displace either resident.
    const Access easy = frontend.access(2);
    EXPECT_FALSE(easy.hit);
    EXPECT_EQ(frontend.resident_items(), 2U);
    EXPECT_TRUE(frontend.access(0).hit);
}

TEST(ICacheFrontend, SubstitutesMissedUnimportantSamples) {
    core::ComputeBoundSampler sampler{100, util::Rng{2}};
    // Mark everything easy (below running mean impossible for all — use
    // one hard outlier to lift the mean).
    std::vector<std::uint32_t> ids;
    std::vector<double> losses;
    for (std::uint32_t i = 0; i < 100; ++i) {
        ids.push_back(i);
        losses.push_back(i == 0 ? 50.0 : 0.1);
    }
    sampler.observe_losses(ids, losses);

    ICacheFrontend::Options options;
    options.substitute_prob = 1.0;  // always substitute
    ICacheFrontend frontend{10, sampler, options, util::Rng{3}};
    // Seed the L-section with one resident.
    const Access seed = frontend.access(5);
    EXPECT_FALSE(seed.hit);  // L-cache was empty: fetched and admitted
    // Every further unimportant miss is served a substitute.
    const Access substituted = frontend.access(6);
    EXPECT_TRUE(substituted.hit);
    EXPECT_TRUE(substituted.substitution);
    EXPECT_NE(substituted.served_id, 6U);
}

TEST(ICacheFrontend, ImportantSamplesGoToHSection) {
    core::ComputeBoundSampler sampler{100, util::Rng{4}};
    std::vector<std::uint32_t> ids = {0, 1};
    std::vector<double> losses = {10.0, 0.1};
    sampler.observe_losses(ids, losses);
    ICacheFrontend::Options options;
    ICacheFrontend frontend{10, sampler, options, util::Rng{5}};
    frontend.access(0);  // important: admitted to H by its raw loss
    const Access hit = frontend.access(0);
    EXPECT_TRUE(hit.hit);
    EXPECT_TRUE(hit.importance_hit);
}

TEST(ICacheFrontend, ImpOnlyVariantNeverSubstitutes) {
    core::ComputeBoundSampler sampler{50, util::Rng{6}};
    ICacheFrontend::Options options;
    options.l_section_enabled = false;
    ICacheFrontend frontend{5, sampler, options, util::Rng{7}};
    EXPECT_EQ(frontend.name(), "iCache-imp");
    for (std::uint32_t i = 0; i < 20; ++i) {
        const Access access = frontend.access(i);
        EXPECT_FALSE(access.substitution);
        EXPECT_EQ(access.served_id, i);
    }
}

class StrategyRunTest : public ::testing::TestWithParam<StrategyKind> {};

TEST_P(StrategyRunTest, RunsEndToEndWithConsistentMetrics) {
    TrainingSimulator simulator{small_config(GetParam())};
    const metrics::RunResult result = simulator.run();

    ASSERT_EQ(result.epochs.size(), 8U);
    EXPECT_GT(result.total_time.count(), 0);
    EXPECT_GT(result.final_accuracy, 0.15);  // far above 1/10 chance... loose
    EXPECT_GE(result.best_accuracy, result.final_accuracy);

    for (const auto& epoch : result.epochs) {
        EXPECT_EQ(epoch.hits + epoch.misses, epoch.accesses);
        EXPECT_GE(epoch.accesses, 1000U);  // >= dataset size per epoch
        EXPECT_GE(epoch.hit_ratio(), 0.0);
        EXPECT_LE(epoch.hit_ratio(), 1.0);
        EXPECT_GE(epoch.epoch_time.count(), epoch.load_time.count());
        EXPECT_GT(epoch.train_loss, 0.0);
    }
    // Learning actually happened.
    EXPECT_GT(result.epochs.back().test_accuracy,
              result.epochs.front().test_accuracy - 0.05);
}

INSTANTIATE_TEST_SUITE_P(
    AllStrategies, StrategyRunTest,
    ::testing::Values(StrategyKind::kBaselineLru, StrategyKind::kLfu,
                      StrategyKind::kCoorDL, StrategyKind::kShade,
                      StrategyKind::kICacheImp, StrategyKind::kICache,
                      StrategyKind::kSpiderImp, StrategyKind::kSpider),
    [](const ::testing::TestParamInfo<StrategyKind>& info) {
        std::string name = to_string(info.param);
        std::erase(name, '-');
        return name;
    });

TEST(Simulator, CoorDlHitRatioTracksCacheFraction) {
    SimConfig config = small_config(StrategyKind::kCoorDL);
    config.cache_fraction = 0.25;
    TrainingSimulator simulator{config};
    const auto result = simulator.run();
    // After warm-up, the MinIO static cache hits exactly its capacity share.
    EXPECT_NEAR(result.tail_hit_ratio(3), 0.25, 0.02);
}

TEST(Simulator, SpiderBeatsBaselineOnHitRatioAndTime) {
    const auto baseline =
        TrainingSimulator{small_config(StrategyKind::kBaselineLru)}.run();
    const auto spider =
        TrainingSimulator{small_config(StrategyKind::kSpider)}.run();
    EXPECT_GT(spider.average_hit_ratio(), baseline.average_hit_ratio() * 2.0);
    EXPECT_LT(spider.total_time, baseline.total_time);
}

TEST(Simulator, LargerCacheNeverHurtsHitRatio) {
    double previous = -1.0;
    for (double fraction : {0.1, 0.25, 0.5, 0.75}) {
        SimConfig config = small_config(StrategyKind::kSpider);
        config.epochs = 5;
        config.cache_fraction = fraction;
        const auto result = TrainingSimulator{config}.run();
        EXPECT_GT(result.average_hit_ratio(), previous)
            << "fraction " << fraction;
        previous = result.average_hit_ratio();
    }
}

TEST(Simulator, PipelineReducesSpiderTime) {
    SimConfig pipelined = small_config(StrategyKind::kSpider);
    pipelined.epochs = 3;
    SimConfig serial = pipelined;
    serial.pipeline_is = false;
    const auto fast = TrainingSimulator{pipelined}.run();
    const auto slow = TrainingSimulator{serial}.run();
    EXPECT_LT(fast.total_time, slow.total_time);
}

TEST(Simulator, MultiGpuReducesEpochTime) {
    SimConfig one = small_config(StrategyKind::kBaselineLru);
    one.epochs = 3;
    SimConfig four = one;
    four.num_gpus = 4;
    const auto t1 = TrainingSimulator{one}.run().mean_epoch_time();
    const auto t4 = TrainingSimulator{four}.run().mean_epoch_time();
    EXPECT_LT(t4, t1);
    // But sub-linear: communication + storage contention.
    EXPECT_GT(t4 * 4, t1);
}

TEST(Simulator, DeterministicForSameSeed) {
    const auto a = TrainingSimulator{small_config(StrategyKind::kSpider)}.run();
    const auto b = TrainingSimulator{small_config(StrategyKind::kSpider)}.run();
    ASSERT_EQ(a.epochs.size(), b.epochs.size());
    EXPECT_EQ(a.total_time, b.total_time);
    EXPECT_DOUBLE_EQ(a.final_accuracy, b.final_accuracy);
    for (std::size_t i = 0; i < a.epochs.size(); ++i) {
        EXPECT_EQ(a.epochs[i].hits, b.epochs[i].hits);
    }
}

TEST(Simulator, WarmRestartRecoversResidencyColdRestartDoesNot) {
    const auto wal_dir = std::filesystem::temp_directory_path() /
                         "spider_sim_warm_restart_test";
    std::filesystem::remove_all(wal_dir);

    SimConfig cold = small_config(StrategyKind::kSpider);
    cold.ssd.enabled = true;
    cold.ssd.capacity_items = 150;
    cold.restart_epoch = 4;  // kill -9 at the start of epoch 4
    SimConfig warm = cold;
    warm.wal_dir = wal_dir.string();

    const auto cold_run = TrainingSimulator{cold}.run();
    const auto warm_run = TrainingSimulator{warm}.run();
    std::filesystem::remove_all(wal_dir);

    ASSERT_EQ(cold_run.epochs.size(), 8U);
    for (const auto& e : cold_run.epochs) {
        EXPECT_EQ(e.restored_items, 0U);  // no WAL: stone-cold restart
    }
    for (std::size_t i = 0; i < warm_run.epochs.size(); ++i) {
        if (i == 4) continue;
        EXPECT_EQ(warm_run.epochs[i].restored_items, 0U) << i;
    }
    // The warm restart rebuilt a substantial resident set...
    EXPECT_GT(warm_run.epochs[4].restored_items, 0U);
    // ...and pays fewer post-restart misses than the cold one.
    EXPECT_LT(warm_run.epochs[4].misses, cold_run.epochs[4].misses);
}

TEST(Simulator, WalWithoutRestartLeavesRunBitIdentical) {
    const auto wal_dir = std::filesystem::temp_directory_path() /
                         "spider_sim_wal_parity_test";
    std::filesystem::remove_all(wal_dir);
    SimConfig plain = small_config(StrategyKind::kSpider);
    SimConfig logged = plain;
    logged.wal_dir = wal_dir.string();
    const auto a = TrainingSimulator{plain}.run();
    const auto b = TrainingSimulator{logged}.run();
    std::filesystem::remove_all(wal_dir);
    ASSERT_EQ(a.epochs.size(), b.epochs.size());
    EXPECT_EQ(a.total_time, b.total_time);  // logging is off the cost model
    for (std::size_t i = 0; i < a.epochs.size(); ++i) {
        EXPECT_EQ(a.epochs[i].hits, b.epochs[i].hits) << i;
        EXPECT_EQ(a.epochs[i].misses, b.epochs[i].misses) << i;
    }
}

TEST(Simulator, RestartEpochRejectsIncompatibleLayers) {
    SimConfig config = small_config(StrategyKind::kSpider);
    config.restart_epoch = 2;
    config.prefetch_enabled = true;
    EXPECT_THROW(TrainingSimulator{config}.run(), std::invalid_argument);
    config.prefetch_enabled = false;
    config.cluster.nodes = 2;
    EXPECT_THROW(TrainingSimulator{config}.run(), std::invalid_argument);
    config.cluster.nodes = 1;
    config.wal_compact_every_epochs = 0;
    EXPECT_THROW(TrainingSimulator{config}.run(), std::invalid_argument);
}

TEST(Simulator, RunResultAggregates) {
    metrics::RunResult result;
    metrics::EpochMetrics e1;
    e1.accesses = 100;
    e1.hits = 50;
    e1.epoch_time = storage::from_ms(10.0);
    metrics::EpochMetrics e2;
    e2.accesses = 100;
    e2.hits = 70;
    e2.epoch_time = storage::from_ms(20.0);
    result.epochs = {e1, e2};
    EXPECT_NEAR(result.average_hit_ratio(), 0.6, 1e-12);
    EXPECT_NEAR(result.tail_hit_ratio(1), 0.7, 1e-12);
    EXPECT_NEAR(storage::to_ms(result.mean_epoch_time()), 15.0, 1e-9);
    metrics::RunResult empty;
    EXPECT_EQ(empty.average_hit_ratio(), 0.0);
    EXPECT_EQ(empty.mean_epoch_time(), storage::SimDuration::zero());
}

}  // namespace
}  // namespace spider::sim
