// SSD tier tests: enable/disable semantics, LRU write-back behaviour,
// batch read-cost model, and end-to-end effect inside the simulator (an
// SSD tier absorbs remote fetches and shortens epochs for every strategy).

#include <gtest/gtest.h>

#include <filesystem>
#include <random>
#include <thread>
#include <vector>

#include "data/presets.hpp"
#include "sim/simulator.hpp"
#include "storage/ssd_tier.hpp"

namespace spider::storage {
namespace {

namespace fs = std::filesystem;

/// RAII temp dir for block-mode tests.
struct TempDir {
    explicit TempDir(const std::string& tag) {
        path = fs::temp_directory_path() /
               ("spider_ssd_tier_test_" + std::to_string(::getpid()) + "_" +
                tag);
        fs::remove_all(path);
    }
    ~TempDir() { fs::remove_all(path); }
    fs::path path;
};

std::vector<std::uint8_t> bytes_for(std::uint32_t id,
                                    std::size_t size = 48) {
    std::vector<std::uint8_t> out(size);
    for (std::size_t i = 0; i < size; ++i) {
        out[i] = static_cast<std::uint8_t>(id * 31 + i);
    }
    return out;
}

TEST(SsdTier, DisabledTierAlwaysMisses) {
    SsdTier tier{SsdTierConfig{}};  // enabled = false
    EXPECT_FALSE(tier.enabled());
    tier.insert(1);
    EXPECT_FALSE(tier.fetch(1));
    EXPECT_EQ(tier.resident_items(), 0U);
}

TEST(SsdTier, WriteBackThenHit) {
    SsdTierConfig config;
    config.enabled = true;
    config.capacity_items = 10;
    SsdTier tier{config};
    EXPECT_FALSE(tier.fetch(5));
    tier.insert(5);
    EXPECT_TRUE(tier.fetch(5));
    EXPECT_EQ(tier.hits(), 1U);
    EXPECT_EQ(tier.misses(), 1U);
}

TEST(SsdTier, LruEvictionWithinBudget) {
    SsdTierConfig config;
    config.enabled = true;
    config.capacity_items = 2;
    SsdTier tier{config};
    tier.insert(1);
    tier.insert(2);
    EXPECT_TRUE(tier.fetch(1));  // bump 1
    tier.insert(3);              // evicts 2
    EXPECT_TRUE(tier.fetch(1));
    EXPECT_FALSE(tier.fetch(2));
    EXPECT_TRUE(tier.fetch(3));
    EXPECT_EQ(tier.resident_items(), 2U);
}

TEST(SsdTier, ResetCountersZeroesHitAndMissTotals) {
    SsdTierConfig config;
    config.enabled = true;
    SsdTier tier{config};
    tier.insert(1);
    EXPECT_TRUE(tier.fetch(1));
    EXPECT_FALSE(tier.fetch(2));
    ASSERT_EQ(tier.hits(), 1U);
    ASSERT_EQ(tier.misses(), 1U);
    tier.reset_counters();  // per-epoch attribution, like RemoteStore's
    EXPECT_EQ(tier.hits(), 0U);
    EXPECT_EQ(tier.misses(), 0U);
    EXPECT_EQ(tier.resident_items(), 1U);  // residency untouched
}

TEST(SsdTier, UnboundedCapacityNeverEvicts) {
    SsdTierConfig config;
    config.enabled = true;
    config.capacity_items = 0;  // CoorDL append-only model
    SsdTier tier{config};
    for (std::uint32_t i = 0; i < 10000; ++i) {
        tier.insert(i);
    }
    EXPECT_EQ(tier.resident_items(), 10000U);
    EXPECT_TRUE(tier.fetch(0));
}

TEST(SsdTier, BatchReadCostModel) {
    SsdTierConfig config;
    config.enabled = true;
    config.read_latency = from_ms(0.1);
    SsdTier tier{config};
    EXPECT_EQ(tier.batch_read_cost(0, 4), SimDuration::zero());
    // 8 reads over 4 lanes = 2 rounds.
    EXPECT_NEAR(to_ms(tier.batch_read_cost(8, 4)), 0.2, 1e-9);
    EXPECT_NEAR(to_ms(tier.batch_read_cost(9, 4)), 0.3, 1e-9);
}

TEST(SsdTier, DisabledTierCountsConsultsAsMisses) {
    // Regression: a consult of a disabled tier used to return false
    // without touching the counters, so ssd_hits + ssd_misses stopped
    // equaling the number of consults whenever the tier was flipped off
    // — per-epoch CSV attribution silently under-reported miss traffic.
    SsdTier tier{SsdTierConfig{}};  // enabled = false
    for (std::uint32_t id = 0; id < 7; ++id) {
        EXPECT_FALSE(tier.fetch(id));
    }
    EXPECT_EQ(tier.hits(), 0U);
    EXPECT_EQ(tier.misses(), 7U);
}

TEST(SsdTier, BlockModeRoundTripsPayloadsThroughTheTier) {
    TempDir dir{"round_trip"};
    SsdTierConfig config;
    config.enabled = true;
    config.capacity_items = 8;
    config.path = dir.path.string();
    SsdTier tier{config};
    ASSERT_TRUE(tier.block_mode());

    for (std::uint32_t id = 0; id < 8; ++id) {
        tier.insert(id, bytes_for(id));
    }
    EXPECT_GT(tier.bytes_used(), 0U);
    for (std::uint32_t id = 0; id < 8; ++id) {
        const auto payload = tier.fetch_payload(id);
        ASSERT_TRUE(payload.has_value()) << id;
        EXPECT_EQ(*payload, bytes_for(id)) << id;
    }
    EXPECT_FALSE(tier.fetch_payload(99).has_value());
    EXPECT_EQ(tier.hits(), 8U);
    EXPECT_EQ(tier.misses(), 1U);

    // LRU eviction also retires the stored bytes: the evicted id is a
    // miss and its payload is no longer live in the block store.
    tier.insert(100, bytes_for(100));  // evicts id 0 (LRU)
    EXPECT_FALSE(tier.fetch_payload(0).has_value());
    EXPECT_EQ(tier.fetch_payload(100).value(), bytes_for(100));
    EXPECT_EQ(tier.block_stats().writes, 9U);
}

TEST(SsdTier, BlockModeKillMinusNineRecoversFlushedPayloads) {
    TempDir dir{"kill9"};
    SsdTierConfig config;
    config.enabled = true;
    config.capacity_items = 0;
    config.path = dir.path.string();

    std::vector<std::uint32_t> residency;
    {
        SsdTier tier{config};
        for (std::uint32_t id = 0; id < 20; ++id) {
            tier.insert(id, bytes_for(id));
        }
        tier.flush();  // durable horizon (the simulator's epoch boundary)
        for (std::uint32_t id = 20; id < 30; ++id) {
            tier.insert(id, bytes_for(id));  // lost in the kill
        }
        residency = tier.dump_residency();  // what the WAL would hold
        // kill -9: the buffered tail never reaches disk (a plain
        // destructor would flush it — that's a clean shutdown).
        tier.drop_unflushed();
    }

    SsdTier reborn{config};
    // restore() drops the ids whose bytes never reached disk and keeps
    // the flushed ones — byte-identical.
    EXPECT_EQ(reborn.restore(residency), 20U);
    for (std::uint32_t id = 0; id < 20; ++id) {
        const auto payload = reborn.fetch_payload(id);
        ASSERT_TRUE(payload.has_value()) << id;
        EXPECT_EQ(*payload, bytes_for(id)) << id;
    }
    for (std::uint32_t id = 20; id < 30; ++id) {
        EXPECT_FALSE(reborn.fetch_payload(id).has_value()) << id;
    }
}

TEST(SsdTier, BlockModeByteBudgetEvictsLruUntilSegmentsFree) {
    TempDir dir{"budget"};
    SsdTierConfig config;
    config.enabled = true;
    config.capacity_items = 0;  // byte budget is the only limit
    config.path = dir.path.string();
    config.capacity_mb = 1;
    config.segment_mb = 1;  // floor; rotation every ~1 MiB
    SsdTier tier{config};

    // ~3 MiB of payloads against a 1 MiB budget: the tier must evict
    // LRU-first until whole-segment GC brings bytes back under cap.
    const std::vector<std::uint8_t> chunk(32 * 1024, 0xAB);
    for (std::uint32_t id = 0; id < 96; ++id) {
        tier.insert(id, chunk);
    }
    EXPECT_LT(tier.resident_items(), 96U);
    EXPECT_GT(tier.resident_items(), 0U);
    EXPECT_GT(tier.block_stats().segments_collected, 0U);
    // Bytes: under cap plus at most one active segment still filling.
    EXPECT_LE(tier.bytes_used(), (1U << 20) + (1U << 20));
    // The newest ids survived (LRU-first eviction).
    EXPECT_TRUE(tier.fetch(95));
}

TEST(SsdTier, SimulatorAbsorbsRemoteFetches) {
    sim::SimConfig without;
    without.dataset = data::cifar10_like(0.02, 41);
    without.strategy = sim::StrategyKind::kBaselineLru;
    without.epochs = 5;
    without.seed = 17;

    sim::SimConfig with = without;
    with.ssd.enabled = true;
    with.ssd.capacity_items = 0;  // hold everything after first touch

    const metrics::RunResult cold = sim::TrainingSimulator{without}.run();
    const metrics::RunResult tiered = sim::TrainingSimulator{with}.run();

    std::uint64_t ssd_hits = 0;
    for (const auto& epoch : tiered.epochs) ssd_hits += epoch.ssd_hits;
    EXPECT_GT(ssd_hits, 0U);
    // From epoch 2 on, nearly every miss is an SSD hit; the run is much
    // faster than paying remote latency each epoch.
    EXPECT_LT(tiered.total_time, cold.total_time / 2);
    // Accuracy identical: the tier changes timing, not data.
    EXPECT_DOUBLE_EQ(tiered.final_accuracy, cold.final_accuracy);
    for (const auto& epoch : cold.epochs) {
        EXPECT_EQ(epoch.ssd_hits, 0U);
    }
}

TEST(SsdTier, SimulatorBlockModeMatchesResidencyModelExactly) {
    // The block store changes WHERE bytes live, not WHICH ids are
    // resident: a block-mode run must reproduce the residency-model
    // run's hit/miss accounting epoch for epoch.
    TempDir dir{"sim_parity"};
    sim::SimConfig model;
    model.dataset = data::cifar10_like(0.02, 47);
    model.strategy = sim::StrategyKind::kBaselineLru;
    model.epochs = 4;
    model.seed = 23;
    model.ssd.enabled = true;
    model.ssd.capacity_items = 200;

    sim::SimConfig block = model;
    block.ssd.path = dir.path.string();

    const metrics::RunResult a = sim::TrainingSimulator{model}.run();
    const metrics::RunResult b = sim::TrainingSimulator{block}.run();
    ASSERT_EQ(a.epochs.size(), b.epochs.size());
    for (std::size_t i = 0; i < a.epochs.size(); ++i) {
        EXPECT_EQ(a.epochs[i].ssd_hits, b.epochs[i].ssd_hits) << i;
        EXPECT_EQ(a.epochs[i].ssd_misses, b.epochs[i].ssd_misses) << i;
        EXPECT_EQ(a.epochs[i].hits, b.epochs[i].hits) << i;
        EXPECT_EQ(a.epochs[i].misses, b.epochs[i].misses) << i;
    }
    EXPECT_EQ(a.total_time, b.total_time);
    // Consult accounting holds in both modes (the disabled-tier fix
    // makes this invariant uniform).
    for (const auto& e : b.epochs) {
        EXPECT_EQ(e.ssd_hits + e.ssd_misses, e.misses);
    }
}

TEST(SsdTier, SimulatorWarmRestartInBlockModeRecoversResidency) {
    // kill -9 at epoch 3 with a WAL and a real on-disk block store: the
    // rebuilt tier must come back warm from actual segment files (the
    // sim flushes at epoch boundaries, so flushed payloads survive).
    TempDir seg_dir{"sim_restart_seg"};
    TempDir wal_dir{"sim_restart_wal"};
    sim::SimConfig config;
    config.dataset = data::cifar10_like(0.02, 51);
    config.strategy = sim::StrategyKind::kBaselineLru;
    config.epochs = 6;
    config.seed = 29;
    config.ssd.enabled = true;
    config.ssd.capacity_items = 200;
    config.ssd.path = seg_dir.path.string();
    config.restart_epoch = 3;
    config.wal_dir = wal_dir.path.string();

    const metrics::RunResult run = sim::TrainingSimulator{config}.run();
    ASSERT_EQ(run.epochs.size(), 6U);
    EXPECT_GT(run.epochs[3].restored_items, 0U);
    // Post-restart epochs keep hitting the tier — the payloads really
    // came back from the segment files, not from re-fetched remotes.
    EXPECT_GT(run.epochs[4].ssd_hits, 0U);
}

TEST(SsdTierConcurrent, ParallelFetchInsertStaysConsistent) {
    // The tier sits on the cache server's miss path, where the event loop
    // and library users hit it from different threads. Run under TSan by
    // tools/run_tier1.sh --server to prove the internal locking. The
    // functional invariants checked here: capacity is never exceeded,
    // and hits + misses equals the number of fetch calls.
    SsdTierConfig config;
    config.enabled = true;
    config.capacity_items = 64;
    SsdTier tier{config};

    constexpr int kThreads = 8;
    constexpr int kOpsPerThread = 20000;
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&tier, t] {
            std::mt19937 rng{static_cast<std::uint32_t>(t)};
            std::uniform_int_distribution<std::uint32_t> pick{0, 255};
            for (int i = 0; i < kOpsPerThread; ++i) {
                const std::uint32_t id = pick(rng);
                if (!tier.fetch(id)) {
                    tier.insert(id);  // write-back, as the miss path does
                }
                if (i % 1024 == 0) {
                    (void)tier.resident_items();
                }
            }
        });
    }
    for (auto& thread : threads) thread.join();

    EXPECT_LE(tier.resident_items(), config.capacity_items);
    EXPECT_EQ(tier.hits() + tier.misses(),
              static_cast<std::uint64_t>(kThreads) * kOpsPerThread);
    EXPECT_GT(tier.hits(), 0U);
}

TEST(SsdTier, SpiderStillBenefitsOnTopOfSsd) {
    // Even with an SSD absorbing remote fetches, SpiderCache's in-memory
    // hits avoid the SSD reads entirely.
    auto run = [](sim::StrategyKind strategy) {
        sim::SimConfig config;
        config.dataset = data::cifar10_like(0.02, 43);
        config.strategy = strategy;
        config.epochs = 6;
        config.ssd.enabled = true;
        config.ssd.capacity_items = 0;
        return sim::TrainingSimulator{config}.run();
    };
    const auto baseline = run(sim::StrategyKind::kBaselineLru);
    const auto spider = run(sim::StrategyKind::kSpider);
    EXPECT_LT(spider.total_time, baseline.total_time);
}

}  // namespace
}  // namespace spider::storage
