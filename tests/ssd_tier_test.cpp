// SSD tier tests: enable/disable semantics, LRU write-back behaviour,
// batch read-cost model, and end-to-end effect inside the simulator (an
// SSD tier absorbs remote fetches and shortens epochs for every strategy).

#include <gtest/gtest.h>

#include <random>
#include <thread>
#include <vector>

#include "data/presets.hpp"
#include "sim/simulator.hpp"
#include "storage/ssd_tier.hpp"

namespace spider::storage {
namespace {

TEST(SsdTier, DisabledTierAlwaysMisses) {
    SsdTier tier{SsdTierConfig{}};  // enabled = false
    EXPECT_FALSE(tier.enabled());
    tier.insert(1);
    EXPECT_FALSE(tier.fetch(1));
    EXPECT_EQ(tier.resident_items(), 0U);
}

TEST(SsdTier, WriteBackThenHit) {
    SsdTierConfig config;
    config.enabled = true;
    config.capacity_items = 10;
    SsdTier tier{config};
    EXPECT_FALSE(tier.fetch(5));
    tier.insert(5);
    EXPECT_TRUE(tier.fetch(5));
    EXPECT_EQ(tier.hits(), 1U);
    EXPECT_EQ(tier.misses(), 1U);
}

TEST(SsdTier, LruEvictionWithinBudget) {
    SsdTierConfig config;
    config.enabled = true;
    config.capacity_items = 2;
    SsdTier tier{config};
    tier.insert(1);
    tier.insert(2);
    EXPECT_TRUE(tier.fetch(1));  // bump 1
    tier.insert(3);              // evicts 2
    EXPECT_TRUE(tier.fetch(1));
    EXPECT_FALSE(tier.fetch(2));
    EXPECT_TRUE(tier.fetch(3));
    EXPECT_EQ(tier.resident_items(), 2U);
}

TEST(SsdTier, ResetCountersZeroesHitAndMissTotals) {
    SsdTierConfig config;
    config.enabled = true;
    SsdTier tier{config};
    tier.insert(1);
    EXPECT_TRUE(tier.fetch(1));
    EXPECT_FALSE(tier.fetch(2));
    ASSERT_EQ(tier.hits(), 1U);
    ASSERT_EQ(tier.misses(), 1U);
    tier.reset_counters();  // per-epoch attribution, like RemoteStore's
    EXPECT_EQ(tier.hits(), 0U);
    EXPECT_EQ(tier.misses(), 0U);
    EXPECT_EQ(tier.resident_items(), 1U);  // residency untouched
}

TEST(SsdTier, UnboundedCapacityNeverEvicts) {
    SsdTierConfig config;
    config.enabled = true;
    config.capacity_items = 0;  // CoorDL append-only model
    SsdTier tier{config};
    for (std::uint32_t i = 0; i < 10000; ++i) {
        tier.insert(i);
    }
    EXPECT_EQ(tier.resident_items(), 10000U);
    EXPECT_TRUE(tier.fetch(0));
}

TEST(SsdTier, BatchReadCostModel) {
    SsdTierConfig config;
    config.enabled = true;
    config.read_latency = from_ms(0.1);
    SsdTier tier{config};
    EXPECT_EQ(tier.batch_read_cost(0, 4), SimDuration::zero());
    // 8 reads over 4 lanes = 2 rounds.
    EXPECT_NEAR(to_ms(tier.batch_read_cost(8, 4)), 0.2, 1e-9);
    EXPECT_NEAR(to_ms(tier.batch_read_cost(9, 4)), 0.3, 1e-9);
}

TEST(SsdTier, SimulatorAbsorbsRemoteFetches) {
    sim::SimConfig without;
    without.dataset = data::cifar10_like(0.02, 41);
    without.strategy = sim::StrategyKind::kBaselineLru;
    without.epochs = 5;
    without.seed = 17;

    sim::SimConfig with = without;
    with.ssd.enabled = true;
    with.ssd.capacity_items = 0;  // hold everything after first touch

    const metrics::RunResult cold = sim::TrainingSimulator{without}.run();
    const metrics::RunResult tiered = sim::TrainingSimulator{with}.run();

    std::uint64_t ssd_hits = 0;
    for (const auto& epoch : tiered.epochs) ssd_hits += epoch.ssd_hits;
    EXPECT_GT(ssd_hits, 0U);
    // From epoch 2 on, nearly every miss is an SSD hit; the run is much
    // faster than paying remote latency each epoch.
    EXPECT_LT(tiered.total_time, cold.total_time / 2);
    // Accuracy identical: the tier changes timing, not data.
    EXPECT_DOUBLE_EQ(tiered.final_accuracy, cold.final_accuracy);
    for (const auto& epoch : cold.epochs) {
        EXPECT_EQ(epoch.ssd_hits, 0U);
    }
}

TEST(SsdTierConcurrent, ParallelFetchInsertStaysConsistent) {
    // The tier sits on the cache server's miss path, where the event loop
    // and library users hit it from different threads. Run under TSan by
    // tools/run_tier1.sh --server to prove the internal locking. The
    // functional invariants checked here: capacity is never exceeded,
    // and hits + misses equals the number of fetch calls.
    SsdTierConfig config;
    config.enabled = true;
    config.capacity_items = 64;
    SsdTier tier{config};

    constexpr int kThreads = 8;
    constexpr int kOpsPerThread = 20000;
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&tier, t] {
            std::mt19937 rng{static_cast<std::uint32_t>(t)};
            std::uniform_int_distribution<std::uint32_t> pick{0, 255};
            for (int i = 0; i < kOpsPerThread; ++i) {
                const std::uint32_t id = pick(rng);
                if (!tier.fetch(id)) {
                    tier.insert(id);  // write-back, as the miss path does
                }
                if (i % 1024 == 0) {
                    (void)tier.resident_items();
                }
            }
        });
    }
    for (auto& thread : threads) thread.join();

    EXPECT_LE(tier.resident_items(), config.capacity_items);
    EXPECT_EQ(tier.hits() + tier.misses(),
              static_cast<std::uint64_t>(kThreads) * kOpsPerThread);
    EXPECT_GT(tier.hits(), 0U);
}

TEST(SsdTier, SpiderStillBenefitsOnTopOfSsd) {
    // Even with an SSD absorbing remote fetches, SpiderCache's in-memory
    // hits avoid the SSD reads entirely.
    auto run = [](sim::StrategyKind strategy) {
        sim::SimConfig config;
        config.dataset = data::cifar10_like(0.02, 43);
        config.strategy = strategy;
        config.epochs = 6;
        config.ssd.enabled = true;
        config.ssd.capacity_items = 0;
        return sim::TrainingSimulator{config}.run();
    };
    const auto baseline = run(sim::StrategyKind::kBaselineLru);
    const auto spider = run(sim::StrategyKind::kSpider);
    EXPECT_LT(spider.total_time, baseline.total_time);
}

}  // namespace
}  // namespace spider::storage
