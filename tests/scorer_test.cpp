// Graph-based importance scorer tests: Eqs. 1-4 on hand-constructed
// geometry, the four sample states of the paper's Figure 8 and their score
// ordering, embedding normalization, the surrogate (close-neighbor)
// threshold, and the min-update-distance optimization.

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <vector>

#include "ann/hnsw.hpp"
#include "core/graph_scorer.hpp"
#include "core/similarity.hpp"

namespace spider::core {
namespace {

TEST(Similarity, ExponentialDecay) {
    EXPECT_DOUBLE_EQ(similarity(0.0, 1.0), 1.0);
    EXPECT_NEAR(similarity(1.0, 1.0), std::exp(-1.0), 1e-12);
    EXPECT_GT(similarity(0.5, 1.0), similarity(1.0, 1.0));
    // Faster decay at larger lambda.
    EXPECT_GT(similarity(1.0, 0.5), similarity(1.0, 2.0));
}

TEST(Similarity, EdgeThresholdRoundTrip) {
    // d* is the distance where sim == alpha, so just inside is an edge and
    // just outside is not.
    const double lambda = 2.0;
    const double alpha = 0.2;
    const double d_star = edge_distance_threshold(lambda, alpha);
    EXPECT_NEAR(similarity(d_star, lambda), alpha, 1e-12);
    EXPECT_TRUE(has_edge(d_star * 0.99, lambda, alpha));
    EXPECT_FALSE(has_edge(d_star * 1.01, lambda, alpha));
}

TEST(Similarity, VectorOverloadUsesEuclideanDistance) {
    const std::vector<float> a = {0.0F, 0.0F};
    const std::vector<float> b = {0.3F, 0.4F};  // distance 0.5
    EXPECT_TRUE(has_edge(a, b, 2.0, 0.2));   // sim = e^-1 = 0.37 > 0.2
    EXPECT_FALSE(has_edge(a, b, 2.0, 0.5));  // 0.37 < 0.5
}

class ScorerFixture : public ::testing::Test {
protected:
    // A 2-D plane with hand-placed unit-norm-ish embeddings; labels are
    // assigned via the map. normalize_embeddings is off so the geometry in
    // the test is exactly the geometry the scorer sees.
    ScorerFixture() {
        ScorerConfig config;
        config.lambda = 2.0;
        config.alpha = 0.2;          // d* = ln(5)/2 = 0.805
        config.surrogate_alpha = 0.5;  // d* = ln(2)/2 = 0.347
        config.neighbor_k = 16;
        config.neighbor_max = 64;
        config.normalize_embeddings = false;
        ann::HnswConfig ann;
        ann.dim = 2;
        index_ = std::make_unique<ann::HnswIndex>(ann);
        scorer_ = std::make_unique<GraphImportanceScorer>(
            *index_, config, [this](std::uint32_t id) { return labels_.at(id); });
    }

    void place(std::uint32_t id, std::uint32_t label, float x, float y) {
        labels_[id] = label;
        scorer_->update_embedding(id, std::vector<float>{x, y});
    }

    std::map<std::uint32_t, std::uint32_t> labels_;
    std::unique_ptr<ann::HnswIndex> index_;
    std::unique_ptr<GraphImportanceScorer> scorer_;
};

TEST_F(ScorerFixture, LoneSampleScoresLnTwo) {
    place(0, 0, 0.0F, 0.0F);
    const ScoreResult result = scorer_->score(0);
    // Only the self-edge: x_same = 1, x_other = 0 -> ln(1/1 + 0 + 1).
    EXPECT_EQ(result.x_same, 1U);
    EXPECT_EQ(result.x_other, 0U);
    EXPECT_NEAR(result.score, std::log(2.0), 1e-9);
    EXPECT_TRUE(result.neighbor_ids.empty());
}

TEST_F(ScorerFixture, WellClassifiedHasLowestScore) {
    // A tight same-class cluster around sample 0.
    place(0, 0, 0.0F, 0.0F);
    for (std::uint32_t i = 1; i <= 8; ++i) {
        place(i, 0, 0.05F * static_cast<float>(i), 0.0F);
    }
    const ScoreResult result = scorer_->score(0);
    EXPECT_EQ(result.x_same, 9U);  // 8 neighbors + self
    EXPECT_EQ(result.x_other, 0U);
    EXPECT_NEAR(result.score, std::log(1.0 / 9.0 + 1.0), 1e-9);
    EXPECT_EQ(result.neighbor_ids.size(), 8U);
}

TEST_F(ScorerFixture, MisclassifiedHasHighestScore) {
    // Sample 100 (class 1) sits inside a class-0 cluster.
    for (std::uint32_t i = 0; i < 8; ++i) {
        place(i, 0, 0.05F * static_cast<float>(i), 0.0F);
    }
    place(100, 1, 0.2F, 0.0F);
    const ScoreResult misclassified = scorer_->score(100);
    EXPECT_EQ(misclassified.x_same, 1U);  // only itself
    EXPECT_EQ(misclassified.x_other, 8U);
    const ScoreResult well = scorer_->score(3);
    EXPECT_GT(misclassified.score, well.score);
    // Exact Eq. 4 value.
    EXPECT_NEAR(misclassified.score, std::log(1.0 + 8.0 / 64.0 + 1.0), 1e-9);
}

TEST_F(ScorerFixture, FourStatesOrderAsInFigure8) {
    // Class 0 cluster at x=0, class 1 cluster at x=1 (inter-cluster
    // distance > d* = 0.805 so clusters do not cross-link), boundary point
    // between them, isolated point far away, misclassified point inside
    // class 0.
    for (std::uint32_t i = 0; i < 6; ++i) {
        place(i, 0, 0.05F * static_cast<float>(i), 0.0F);        // class 0
        place(10 + i, 1, 1.0F + 0.05F * static_cast<float>(i), 0.0F);
    }
    place(50, 0, 0.55F, 0.0F);   // boundary: reaches both clusters
    place(51, 0, 5.0F, 5.0F);    // isolated
    place(52, 1, 0.12F, 0.0F);   // misclassified inside class 0

    const double well = scorer_->score(2).score;
    const double boundary = scorer_->score(50).score;
    const double isolated = scorer_->score(51).score;
    const double misclassified = scorer_->score(52).score;

    // Paper Figure 8(b): well-classified lowest, boundary/isolated medium,
    // misclassified highest.
    EXPECT_LT(well, boundary);
    EXPECT_LT(boundary, misclassified);
    EXPECT_LT(well, isolated);
    EXPECT_LE(isolated, misclassified);
}

TEST_F(ScorerFixture, CloseNeighborsAreSubsetWithinSurrogateThreshold) {
    place(0, 0, 0.0F, 0.0F);
    place(1, 0, 0.1F, 0.0F);   // within surrogate threshold (0.347)
    place(2, 0, 0.6F, 0.0F);   // edge (d < 0.805) but not surrogate-close
    const ScoreResult result = scorer_->score(0);
    ASSERT_EQ(result.neighbor_ids.size(), 2U);
    ASSERT_EQ(result.close_neighbor_ids.size(), 1U);
    EXPECT_EQ(result.close_neighbor_ids[0], 1U);
}

TEST_F(ScorerFixture, ScoreOfUnindexedSampleThrows) {
    place(0, 0, 0.0F, 0.0F);
    EXPECT_THROW(scorer_->score(777), std::logic_error);
}

TEST(Scorer, NormalizationMakesScoresScaleInvariant) {
    // Same geometry at two wildly different norms must produce identical
    // neighbor structure when normalize_embeddings is on.
    auto build = [](float scale) {
        ScorerConfig config;  // defaults: normalization on
        ann::HnswConfig ann;
        ann.dim = 2;
        auto index = std::make_shared<ann::HnswIndex>(ann);
        auto labels = std::make_shared<std::map<std::uint32_t, std::uint32_t>>();
        GraphImportanceScorer scorer{
            *index, config,
            [labels](std::uint32_t id) { return labels->at(id); }};
        auto place = [&](std::uint32_t id, std::uint32_t label, float x,
                         float y) {
            (*labels)[id] = label;
            scorer.update_embedding(id, std::vector<float>{x * scale, y * scale});
        };
        place(0, 0, 1.0F, 0.0F);
        place(1, 0, 0.95F, 0.1F);
        place(2, 1, 0.0F, 1.0F);
        struct Out {
            std::shared_ptr<ann::HnswIndex> keep_alive;
            ScoreResult r;
        };
        return Out{index, scorer.score(0)};
    };
    const auto small = build(1.0F);
    const auto large = build(1000.0F);
    EXPECT_EQ(small.r.x_same, large.r.x_same);
    EXPECT_EQ(small.r.x_other, large.r.x_other);
    EXPECT_NEAR(small.r.score, large.r.score, 1e-9);
}

TEST(Scorer, MinUpdateDistanceSkipsStaticEmbeddings) {
    ScorerConfig config;
    config.normalize_embeddings = false;
    config.min_update_distance = 0.5;
    ann::HnswConfig ann;
    ann.dim = 2;
    ann::HnswIndex index{ann};
    GraphImportanceScorer scorer{index, config,
                                 [](std::uint32_t) { return 0U; }};

    EXPECT_TRUE(scorer.update_embedding(0, std::vector<float>{0.0F, 0.0F}));
    // Tiny drift: skipped.
    EXPECT_FALSE(scorer.update_embedding(0, std::vector<float>{0.1F, 0.0F}));
    EXPECT_EQ(scorer.skipped_updates(), 1U);
    // Large move: applied.
    EXPECT_TRUE(scorer.update_embedding(0, std::vector<float>{2.0F, 0.0F}));
    EXPECT_EQ(scorer.applied_updates(), 2U);
    const auto stored = index.vector_of(0);
    ASSERT_TRUE(stored.has_value());
    EXPECT_FLOAT_EQ((*stored)[0], 2.0F);
}

TEST(Scorer, RejectsInvalidConfig) {
    ann::HnswConfig ann;
    ann.dim = 2;
    ann::HnswIndex index{ann};
    auto label = [](std::uint32_t) { return 0U; };

    ScorerConfig bad_alpha;
    bad_alpha.alpha = 1.5;
    EXPECT_THROW((GraphImportanceScorer{index, bad_alpha, label}),
                 std::invalid_argument);

    ScorerConfig bad_lambda;
    bad_lambda.lambda = -1.0;
    EXPECT_THROW((GraphImportanceScorer{index, bad_lambda, label}),
                 std::invalid_argument);

    ScorerConfig bad_max;
    bad_max.neighbor_max = 0;
    EXPECT_THROW((GraphImportanceScorer{index, bad_max, label}),
                 std::invalid_argument);
}

TEST(Scorer, DistanceThresholdMatchesClosedForm) {
    ScorerConfig config;
    config.lambda = 2.0;
    config.alpha = 0.2;
    ann::HnswConfig ann;
    ann.dim = 2;
    ann::HnswIndex index{ann};
    GraphImportanceScorer scorer{index, config,
                                 [](std::uint32_t) { return 0U; }};
    EXPECT_NEAR(scorer.distance_threshold(), -std::log(0.2) / 2.0, 1e-12);
}

// score_batch must be a pure fan-out of score(): same scores, same
// neighbor lists, in batch order, regardless of thread count.
TEST(ScoreBatch, ParallelEqualsSerialExactly) {
    ann::HnswConfig ann;
    ann.dim = 8;
    ann::HnswIndex index{ann};
    ScorerConfig config;
    config.neighbor_k = 12;
    GraphImportanceScorer scorer{index, config,
                                 [](std::uint32_t id) { return id % 5; }};

    util::Rng rng{37};
    const std::size_t population = 300;
    std::vector<float> embedding(8);
    for (std::uint32_t id = 0; id < population; ++id) {
        const double center = static_cast<double>(id % 5);
        for (float& x : embedding) {
            x = static_cast<float>(rng.normal(center, 1.0));
        }
        scorer.update_embedding(id, embedding);
    }

    std::vector<std::uint32_t> ids(population);
    for (std::uint32_t id = 0; id < population; ++id) ids[id] = id;

    const std::vector<ScoreResult> serial = scorer.score_batch(ids, nullptr);
    util::ThreadPool pool{4};
    const std::vector<ScoreResult> parallel = scorer.score_batch(ids, &pool);

    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        EXPECT_EQ(parallel[i].score, serial[i].score) << "sample " << i;
        EXPECT_EQ(parallel[i].x_same, serial[i].x_same) << "sample " << i;
        EXPECT_EQ(parallel[i].x_other, serial[i].x_other) << "sample " << i;
        EXPECT_EQ(parallel[i].neighbor_ids, serial[i].neighbor_ids)
            << "sample " << i;
        EXPECT_EQ(parallel[i].close_neighbor_ids, serial[i].close_neighbor_ids)
            << "sample " << i;
    }
}

}  // namespace
}  // namespace spider::core
