// Neural-network substrate tests. The load-bearing ones are the numerical
// gradient checks: every layer's analytic backward pass is validated
// against central finite differences, so the training dynamics the whole
// evaluation rests on are trustworthy.

#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "nn/layers.hpp"
#include "nn/mlp_classifier.hpp"
#include "nn/model_profile.hpp"
#include "nn/optimizer.hpp"
#include "tensor/ops.hpp"

namespace spider::nn {
namespace {

/// Scalar loss of a forward pass: mean softmax cross-entropy.
double loss_of(Sequential& net, Linear& head, const tensor::Matrix& x,
               std::span<const std::uint32_t> labels) {
    tensor::Matrix hidden;
    net.forward(x, hidden);
    tensor::Matrix logits;
    head.forward(hidden, logits);
    tensor::Matrix probs;
    tensor::softmax_rows(logits, probs);
    return tensor::cross_entropy(probs, labels);
}

TEST(Linear, ForwardMatchesManualComputation) {
    util::Rng rng{3};
    Linear layer{2, 2, rng};
    layer.weight().flat()[0] = 1.0F;  // W = [[1, 2], [3, 4]]
    layer.weight().flat()[1] = 2.0F;
    layer.weight().flat()[2] = 3.0F;
    layer.weight().flat()[3] = 4.0F;
    layer.bias().flat()[0] = 0.5F;
    layer.bias().flat()[1] = -0.5F;

    tensor::Matrix x{1, 2};
    x.at(0, 0) = 1.0F;
    x.at(0, 1) = 1.0F;
    tensor::Matrix y;
    layer.forward(x, y);
    EXPECT_FLOAT_EQ(y.at(0, 0), 4.5F);   // 1+3+0.5
    EXPECT_FLOAT_EQ(y.at(0, 1), 5.5F);   // 2+4-0.5
}

TEST(GradientCheck, FullNetworkNumericalGradients) {
    util::Rng rng{11};
    Sequential net;
    net.add(std::make_unique<Linear>(4, 6, rng));
    net.add(std::make_unique<Relu>());
    net.add(std::make_unique<Linear>(6, 5, rng));
    net.add(std::make_unique<Relu>());
    Linear head{5, 3, rng};

    tensor::Matrix x{3, 4};
    x.randomize_normal(rng, 0.0F, 1.0F);
    const std::vector<std::uint32_t> labels = {0, 2, 1};

    // Analytic gradients.
    net.zero_grad();
    head.zero_grad();
    tensor::Matrix hidden;
    net.forward(x, hidden);
    tensor::Matrix logits;
    head.forward(hidden, logits);
    tensor::Matrix probs;
    tensor::softmax_rows(logits, probs);
    tensor::Matrix dlogits;
    tensor::softmax_cross_entropy_backward(probs, labels, dlogits);
    tensor::Matrix dhidden;
    head.backward(dlogits, dhidden);
    tensor::Matrix dx;
    net.backward(dhidden, dx);

    // Finite differences on every parameter of every layer.
    const float eps = 1e-3F;
    auto check_params = [&](Layer& layer, const char* tag) {
        for (ParamRef ref : layer.params()) {
            for (std::size_t i = 0; i < ref.value->size(); ++i) {
                float& w = ref.value->flat()[i];
                const float original = w;
                w = original + eps;
                const double up = loss_of(net, head, x, labels);
                w = original - eps;
                const double down = loss_of(net, head, x, labels);
                w = original;
                const double numeric = (up - down) / (2.0 * eps);
                const double analytic = ref.grad->flat()[i];
                EXPECT_NEAR(analytic, numeric, 2e-2)
                    << tag << " param index " << i;
            }
        }
    };
    check_params(net, "trunk");
    check_params(head, "head");
}

TEST(Sequential, ActivationExposesIntermediate) {
    util::Rng rng{13};
    Sequential net;
    net.add(std::make_unique<Linear>(3, 4, rng));
    net.add(std::make_unique<Relu>());
    tensor::Matrix x{2, 3};
    x.randomize_normal(rng, 0.0F, 1.0F);
    tensor::Matrix out;
    net.forward(x, out);
    // Output equals the last activation; the pre-ReLU is also accessible.
    const tensor::Matrix& relu_out = net.activation(1);
    for (std::size_t i = 0; i < out.size(); ++i) {
        EXPECT_FLOAT_EQ(out.flat()[i], relu_out.flat()[i]);
        EXPECT_GE(relu_out.flat()[i], 0.0F);
    }
}

TEST(Sequential, ThrowsWhenEmpty) {
    Sequential net;
    tensor::Matrix x{1, 1};
    tensor::Matrix y;
    EXPECT_THROW(net.forward(x, y), std::logic_error);
}

TEST(Sgd, StepMovesAgainstGradient) {
    util::Rng rng{17};
    Linear layer{2, 2, rng};
    layer.zero_grad();
    const float before = layer.weight().flat()[0];
    // Gradient of +1 on one weight.
    layer.params()[0].grad->flat()[0] = 1.0F;
    SgdConfig config;
    config.learning_rate = 0.1F;
    config.momentum = 0.0F;
    config.weight_decay = 0.0F;
    SgdOptimizer opt{layer.params(), config};
    opt.step();
    EXPECT_NEAR(layer.weight().flat()[0], before - 0.1F, 1e-6);
    // Gradients were consumed.
    EXPECT_FLOAT_EQ(layer.params()[0].grad->flat()[0], 0.0F);
}

TEST(Sgd, MomentumAccumulates) {
    util::Rng rng{19};
    Linear layer{1, 1, rng};
    layer.weight().flat()[0] = 0.0F;
    SgdConfig config;
    config.learning_rate = 1.0F;
    config.momentum = 0.5F;
    config.weight_decay = 0.0F;
    SgdOptimizer opt{layer.params(), config};
    // Two steps of unit gradient: v1 = 1, v2 = 1.5.
    layer.params()[0].grad->flat()[0] = 1.0F;
    opt.step();
    EXPECT_NEAR(layer.weight().flat()[0], -1.0F, 1e-6);
    layer.params()[0].grad->flat()[0] = 1.0F;
    opt.step();
    EXPECT_NEAR(layer.weight().flat()[0], -2.5F, 1e-6);
}

TEST(Sgd, WeightDecayShrinksWeights) {
    util::Rng rng{23};
    Linear layer{1, 1, rng};
    layer.weight().flat()[0] = 10.0F;
    SgdConfig config;
    config.learning_rate = 0.1F;
    config.momentum = 0.0F;
    config.weight_decay = 0.5F;
    SgdOptimizer opt{layer.params(), config};
    layer.params()[0].grad->flat()[0] = 0.0F;
    opt.step();
    EXPECT_NEAR(layer.weight().flat()[0], 10.0F - 0.1F * 0.5F * 10.0F, 1e-5);
}

TEST(CosineLr, EndpointsAndMonotonicity) {
    EXPECT_FLOAT_EQ(cosine_lr(0.1F, 0.001F, 0, 100), 0.1F);
    EXPECT_NEAR(cosine_lr(0.1F, 0.001F, 99, 100), 0.001F, 1e-6);
    float prev = 1.0F;
    for (std::size_t e = 0; e < 50; ++e) {
        const float lr = cosine_lr(0.1F, 0.001F, e, 50);
        EXPECT_LE(lr, prev);
        prev = lr;
    }
    EXPECT_FLOAT_EQ(cosine_lr(0.1F, 0.001F, 0, 1), 0.1F);
}

TEST(MlpClassifier, LearnsLinearlySeparableData) {
    MlpConfig config;
    config.input_dim = 2;
    config.hidden_dims = {8, 4};
    config.num_classes = 2;
    config.seed = 29;
    config.sgd.learning_rate = 0.1F;
    MlpClassifier model{config};

    util::Rng rng{31};
    tensor::Matrix x{64, 2};
    std::vector<std::uint32_t> labels(64);
    auto fill = [&] {
        for (std::size_t i = 0; i < 64; ++i) {
            const std::uint32_t cls = i % 2;
            x.at(i, 0) = static_cast<float>(rng.normal(cls ? 2.0 : -2.0, 0.5));
            x.at(i, 1) = static_cast<float>(rng.normal(cls ? -2.0 : 2.0, 0.5));
            labels[i] = cls;
        }
    };

    double first_loss = 0.0;
    double last_loss = 0.0;
    for (int step = 0; step < 60; ++step) {
        fill();
        const ForwardResult fwd = model.forward(x, labels);
        if (step == 0) first_loss = fwd.mean_loss;
        last_loss = fwd.mean_loss;
        model.backward_and_step(labels);
    }
    EXPECT_LT(last_loss, first_loss * 0.2);
    fill();
    EXPECT_GT(model.evaluate(x, labels), 0.95);
}

TEST(MlpClassifier, EmbeddingDimensionsMatchConfig) {
    MlpConfig config;
    config.input_dim = 5;
    config.hidden_dims = {16, 7};
    config.num_classes = 3;
    MlpClassifier model{config};
    EXPECT_EQ(model.embedding_dim(), 7U);

    tensor::Matrix x{4, 5};
    const std::vector<std::uint32_t> labels = {0, 1, 2, 0};
    const ForwardResult fwd = model.forward(x, labels);
    EXPECT_EQ(fwd.embeddings.rows(), 4U);
    EXPECT_EQ(fwd.embeddings.cols(), 7U);
    EXPECT_EQ(fwd.per_sample_loss.size(), 4U);
    EXPECT_EQ(fwd.predictions.size(), 4U);
}

TEST(MlpClassifier, TrainMaskBlocksUpdatesForMaskedRows) {
    MlpConfig config;
    config.input_dim = 2;
    config.hidden_dims = {4, 4};
    config.num_classes = 2;
    config.seed = 37;
    config.sgd.weight_decay = 0.0F;  // decay alone would move weights
    MlpClassifier model_masked{config};
    MlpClassifier model_reference{config};

    util::Rng rng{41};
    tensor::Matrix x{8, 2};
    x.randomize_normal(rng, 0.0F, 1.0F);
    const std::vector<std::uint32_t> labels = {0, 1, 0, 1, 0, 1, 0, 1};

    // Masking every row = no update at all: predictions stay identical to
    // an untrained clone.
    model_masked.forward(x, labels);
    const std::vector<std::uint8_t> none(8, 0);
    model_masked.backward_and_step(labels, none);

    const ForwardResult a = model_masked.forward(x, labels);
    const ForwardResult b = model_reference.forward(x, labels);
    for (std::size_t i = 0; i < a.per_sample_loss.size(); ++i) {
        EXPECT_NEAR(a.per_sample_loss[i], b.per_sample_loss[i], 1e-6);
    }
}

TEST(MlpClassifier, RejectsBadInputs) {
    MlpConfig config;
    config.input_dim = 3;
    config.hidden_dims = {4};
    config.num_classes = 2;
    MlpClassifier model{config};
    tensor::Matrix wrong{2, 5};
    const std::vector<std::uint32_t> labels = {0, 1};
    EXPECT_THROW(model.forward(wrong, labels), std::invalid_argument);
    EXPECT_THROW(model.backward_and_step(labels), std::logic_error);
}

TEST(ModelProfile, Table1ValuesPreserved) {
    const ModelProfile r18 = make_profile(ModelKind::kResNet18);
    EXPECT_EQ(r18.name, "ResNet18");
    EXPECT_DOUBLE_EQ(r18.table1_stage1_ms, 42.0);
    EXPECT_DOUBLE_EQ(r18.backward_ms, 35.0);
    EXPECT_DOUBLE_EQ(r18.is_ms, 16.0);
    EXPECT_FALSE(r18.long_is_pipeline);

    const ModelProfile alex = make_profile(ModelKind::kAlexNet);
    EXPECT_DOUBLE_EQ(alex.table1_stage1_ms, 62.0);
    EXPECT_DOUBLE_EQ(alex.is_ms, 35.0);
    EXPECT_TRUE(alex.long_is_pipeline);  // Fig. 12(b) model
}

TEST(ModelProfile, EvaluatedSetHasFourModels) {
    const auto models = evaluated_profiles();
    ASSERT_EQ(models.size(), 4U);
    EXPECT_EQ(models[0].name, "ResNet18");
    EXPECT_EQ(models[3].name, "Vgg16");
    EXPECT_EQ(all_profiles().size(), 6U);
}

TEST(ModelProfile, EmbeddingDimsTrackPaperOrdering) {
    // AlexNet/VGG16 have the largest embeddings (paper Section 5), hence
    // the longest IS stage.
    const auto r18 = make_profile(ModelKind::kResNet18);
    const auto alex = make_profile(ModelKind::kAlexNet);
    EXPECT_GT(alex.paper_embedding_dim, r18.paper_embedding_dim);
    EXPECT_GT(alex.is_ms, r18.is_ms);
}

}  // namespace
}  // namespace spider::nn
