// Sampler tests: uniform permutation behaviour, graph-IS multinomial
// proportionality and floor coverage, SHADE rank-weight mechanics (and the
// within-batch-only comparability the paper criticizes), and the
// compute-bound sampler's selective-backprop mask and H/L split.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <numeric>
#include <set>
#include <vector>

#include "core/samplers.hpp"

namespace spider::core {
namespace {

TEST(UniformSampler, EveryEpochIsAPermutation) {
    UniformSampler sampler{100, util::Rng{1}};
    for (std::size_t epoch = 0; epoch < 3; ++epoch) {
        std::vector<std::uint32_t> order = sampler.epoch_order(epoch);
        ASSERT_EQ(order.size(), 100U);
        std::sort(order.begin(), order.end());
        for (std::uint32_t i = 0; i < 100; ++i) {
            EXPECT_EQ(order[i], i);
        }
    }
}

TEST(UniformSampler, OrdersDifferAcrossEpochs) {
    UniformSampler sampler{50, util::Rng{2}};
    const auto a = sampler.epoch_order(0);
    const auto b = sampler.epoch_order(1);
    EXPECT_NE(a, b);
}

TEST(GraphIsSampler, DrawsProportionalToScores) {
    std::vector<double> scores = {0.1, 0.1, 0.1, 0.7};
    GraphIsSampler sampler{scores, util::Rng{3}, /*uniform_floor=*/0.0};
    std::map<std::uint32_t, int> counts;
    for (int rep = 0; rep < 300; ++rep) {
        for (std::uint32_t id : sampler.epoch_order(0)) {
            ++counts[id];
        }
    }
    const double total = 300.0 * 4.0;
    EXPECT_NEAR(counts[3] / total, 0.7, 0.03);
    EXPECT_NEAR(counts[0] / total, 0.1, 0.03);
}

TEST(GraphIsSampler, UniformBeforeAnyScores) {
    // All-zero scores: the floor term alone drives the draw -> uniform.
    std::vector<double> scores(10, 0.0);
    GraphIsSampler sampler{scores, util::Rng{5}, 0.1};
    std::map<std::uint32_t, int> counts;
    for (int rep = 0; rep < 500; ++rep) {
        for (std::uint32_t id : sampler.epoch_order(0)) {
            ++counts[id];
        }
    }
    for (const auto& [id, count] : counts) {
        EXPECT_NEAR(count / 5000.0, 0.1, 0.02) << "id " << id;
    }
}

TEST(GraphIsSampler, ZeroFloorWithNoScoresFallsBackToUniform) {
    // Before any scores exist, floor = 0 must not crash the alias table.
    std::vector<double> scores(20, 0.0);
    GraphIsSampler sampler{scores, util::Rng{99}, /*uniform_floor=*/0.0};
    const auto order = sampler.epoch_order(0);
    EXPECT_EQ(order.size(), 20U);
    for (std::uint32_t id : order) {
        EXPECT_LT(id, 20U);
    }
}

TEST(GraphIsSampler, FloorKeepsZeroScoreSamplesReachable) {
    std::vector<double> scores = {0.0, 1.0};
    GraphIsSampler sampler{scores, util::Rng{7}, 0.2};
    int zero_draws = 0;
    for (int rep = 0; rep < 200; ++rep) {
        for (std::uint32_t id : sampler.epoch_order(0)) {
            zero_draws += id == 0 ? 1 : 0;
        }
    }
    EXPECT_GT(zero_draws, 10);  // floor mass keeps id 0 alive
}

TEST(GraphIsSampler, LiveViewTracksScoreUpdates) {
    std::vector<double> scores = {1.0, 0.0};
    GraphIsSampler sampler{scores, util::Rng{9}, 0.0};
    scores[0] = 0.0;
    scores[1] = 1.0;  // flip the mass; the sampler sees the same memory
    const auto order = sampler.epoch_order(0);
    const std::size_t ones =
        static_cast<std::size_t>(std::count(order.begin(), order.end(), 1U));
    EXPECT_EQ(ones, order.size());
}

TEST(GraphIsSampler, ImportanceOfReflectsScores) {
    std::vector<double> scores = {0.25, 0.5};
    GraphIsSampler sampler{scores, util::Rng{11}};
    EXPECT_DOUBLE_EQ(sampler.importance_of(0), 0.25);
    EXPECT_DOUBLE_EQ(sampler.importance_of(1), 0.5);
    EXPECT_DOUBLE_EQ(sampler.importance_of(999), 0.0);
}

TEST(GraphIsSampler, RejectsEmptyScores) {
    std::vector<double> empty;
    EXPECT_THROW((GraphIsSampler{empty, util::Rng{1}}), std::invalid_argument);
}

TEST(ShadeSampler, InitialWeightsUniform) {
    ShadeSampler sampler{100, util::Rng{13}};
    for (std::uint32_t i = 0; i < 100; ++i) {
        EXPECT_DOUBLE_EQ(sampler.importance_of(i), 1.0);
    }
}

TEST(ShadeSampler, RanksAssignedWithinBatch) {
    ShadeSampler sampler{10, util::Rng{17}};
    const std::vector<std::uint32_t> ids = {0, 1, 2, 3};
    const std::vector<double> losses = {0.5, 2.0, 0.1, 1.0};
    sampler.observe_losses(ids, losses);
    // Highest loss -> rank 4/4 = 1.0; lowest -> 1/4.
    EXPECT_DOUBLE_EQ(sampler.importance_of(1), 1.0);
    EXPECT_DOUBLE_EQ(sampler.importance_of(2), 0.25);
    EXPECT_DOUBLE_EQ(sampler.importance_of(0), 0.5);
    EXPECT_DOUBLE_EQ(sampler.importance_of(3), 0.75);
}

TEST(ShadeSampler, RanksNotComparableAcrossBatches) {
    // The paper's Motivation 1: a batch of easy samples still spreads the
    // full rank range, so an easy sample can outrank a hard one from a
    // different batch.
    ShadeSampler sampler{10, util::Rng{19}};
    sampler.observe_losses(std::vector<std::uint32_t>{0, 1},
                           std::vector<double>{5.0, 4.0});  // both hard
    sampler.observe_losses(std::vector<std::uint32_t>{2, 3},
                           std::vector<double>{0.2, 0.1});  // both easy
    // Sample 2 (loss 0.2) gets rank weight 1.0 — higher than sample 1
    // (loss 4.0, weight 0.5) despite being 20x easier.
    EXPECT_GT(sampler.importance_of(2), sampler.importance_of(1));
}

TEST(ShadeSampler, SamplesWithReplacementFollowWeights) {
    ShadeSampler sampler{4, util::Rng{23}};
    sampler.observe_losses(std::vector<std::uint32_t>{0, 1, 2, 3},
                           std::vector<double>{0.1, 0.2, 0.3, 10.0});
    std::map<std::uint32_t, int> counts;
    for (int rep = 0; rep < 500; ++rep) {
        for (std::uint32_t id : sampler.epoch_order(0)) {
            ++counts[id];
        }
    }
    // Weights are 0.25, 0.5, 0.75, 1.0 -> sample 3 drawn most.
    EXPECT_GT(counts[3], counts[0]);
    EXPECT_GT(counts[3], counts[1]);
}

TEST(ComputeBoundSampler, UniformDataOrder) {
    ComputeBoundSampler sampler{50, util::Rng{29}};
    std::vector<std::uint32_t> order = sampler.epoch_order(0);
    ASSERT_EQ(order.size(), 50U);
    std::sort(order.begin(), order.end());
    for (std::uint32_t i = 0; i < 50; ++i) {
        EXPECT_EQ(order[i], i);  // permutation: I/O unchanged by design
    }
}

namespace {
/// Feeds enough loss observations to pass the selective-backprop warmup.
void finish_warmup(ComputeBoundSampler& sampler, std::size_t dataset_size) {
    std::vector<std::uint32_t> ids(dataset_size);
    std::iota(ids.begin(), ids.end(), 0U);
    const std::vector<double> losses(dataset_size, 1.0);
    sampler.observe_losses(ids, losses);
    sampler.observe_losses(ids, losses);
}
}  // namespace

TEST(ComputeBoundSampler, NoMaskDuringWarmup) {
    ComputeBoundSampler sampler{100, util::Rng{31}, 0.5};
    const std::vector<std::uint32_t> ids = {0, 1, 2, 3};
    const std::vector<double> losses = {0.1, 0.9, 0.5, 0.7};
    EXPECT_TRUE(sampler.train_mask(ids, losses).empty());
}

TEST(ComputeBoundSampler, MaskKeepsRoughlyTheTargetFraction) {
    ComputeBoundSampler sampler{10, util::Rng{31}, /*keep_fraction=*/0.5};
    finish_warmup(sampler, 10);
    util::Rng rng{1};
    const std::size_t batch = 128;
    std::size_t trained = 0;
    std::size_t total = 0;
    std::size_t high_trained = 0;  // the max-loss row
    std::size_t low_trained = 0;   // the min-loss row
    const int rounds = 200;
    for (int round = 0; round < rounds; ++round) {
        std::vector<std::uint32_t> ids(batch);
        std::vector<double> losses(batch);
        for (std::size_t i = 0; i < batch; ++i) {
            ids[i] = static_cast<std::uint32_t>(i % 10);
            losses[i] = rng.uniform(0.1, 0.9);
        }
        losses[0] = 5.0;    // guaranteed highest
        losses[1] = 0.001;  // guaranteed lowest
        const auto mask = sampler.train_mask(ids, losses);
        ASSERT_EQ(mask.size(), batch);
        trained += std::count(mask.begin(), mask.end(), std::uint8_t{1});
        total += mask.size();
        high_trained += mask[0];
        low_trained += mask[1];
    }
    // Expected fraction ~= keep_fraction (probabilistic percentile rule;
    // exact mean for rank-based P is (n+1)/(2n) at keep 0.5).
    EXPECT_NEAR(static_cast<double>(trained) / static_cast<double>(total), 0.5,
                0.05);
    // Highest loss trained far more often than lowest.
    EXPECT_GT(high_trained, low_trained * 5 + 10);
}

TEST(ComputeBoundSampler, MaskAlwaysKeepsAtLeastOne) {
    ComputeBoundSampler sampler{10, util::Rng{37}, 0.01};
    finish_warmup(sampler, 10);
    const std::vector<std::uint32_t> ids = {0, 1};
    const std::vector<double> losses = {0.1, 0.2};
    for (int round = 0; round < 50; ++round) {
        const auto mask = sampler.train_mask(ids, losses);
        EXPECT_GE(std::count(mask.begin(), mask.end(), std::uint8_t{1}), 1);
    }
}

TEST(ComputeBoundSampler, ImportanceIsRawLastLoss) {
    ComputeBoundSampler sampler{10, util::Rng{41}};
    sampler.observe_losses(std::vector<std::uint32_t>{3},
                           std::vector<double>{2.5});
    EXPECT_DOUBLE_EQ(sampler.importance_of(3), 2.5);
    // Raw loss, not rank: a later smaller observation lowers it.
    sampler.observe_losses(std::vector<std::uint32_t>{3},
                           std::vector<double>{0.5});
    EXPECT_DOUBLE_EQ(sampler.importance_of(3), 0.5);
}

TEST(ComputeBoundSampler, ImportantMeansAboveRunningMean) {
    ComputeBoundSampler sampler{10, util::Rng{43}};
    EXPECT_FALSE(sampler.is_important(0));  // nothing observed yet
    sampler.observe_losses(std::vector<std::uint32_t>{0, 1},
                           std::vector<double>{10.0, 0.1});
    EXPECT_TRUE(sampler.is_important(0));
    EXPECT_FALSE(sampler.is_important(1));
}

TEST(ComputeBoundSampler, RejectsBadKeepFraction) {
    EXPECT_THROW((ComputeBoundSampler{10, util::Rng{1}, 0.0}),
                 std::invalid_argument);
    EXPECT_THROW((ComputeBoundSampler{10, util::Rng{1}, 1.5}),
                 std::invalid_argument);
}

TEST(Samplers, NamesAreStable) {
    std::vector<double> scores(3, 1.0);
    EXPECT_EQ(UniformSampler(3, util::Rng{1}).name(), "Uniform");
    EXPECT_EQ((GraphIsSampler{scores, util::Rng{1}}).name(), "SpiderCache");
    EXPECT_EQ((ShadeSampler{3, util::Rng{1}}).name(), "SHADE");
    EXPECT_EQ((ComputeBoundSampler{3, util::Rng{1}}).name(), "iCache-IS");
}

}  // namespace
}  // namespace spider::core
