// Cross-module integration tests: a hand-written training loop driving the
// SpiderCache public API against a real dataset/model (the loop users of
// the library write, independent of the simulator), plus end-to-end
// properties that span sampler + scorer + cache + elastic manager.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/pipeline.hpp"
#include "core/spider_cache.hpp"
#include "data/presets.hpp"
#include "nn/mlp_classifier.hpp"
#include "sim/simulator.hpp"
#include "storage/remote_store.hpp"

namespace spider {
namespace {

TEST(Integration, ManualTrainingLoopWithSpiderCache) {
    // The quickstart loop, written out by hand.
    data::DatasetSpec spec = data::cifar10_like(0.02, 11);
    const data::SyntheticDataset dataset{spec};
    storage::RemoteStore remote{dataset, storage::RemoteStoreConfig{}};

    nn::MlpConfig mlp;
    mlp.input_dim = dataset.feature_dim();
    mlp.hidden_dims = {48, 24};
    mlp.num_classes = dataset.num_classes();
    mlp.seed = 3;
    nn::MlpClassifier model{mlp};

    core::SpiderCacheConfig sc;
    sc.dataset_size = dataset.size();
    sc.label_of = [&dataset](std::uint32_t id) { return dataset.label_of(id); };
    sc.cache_items = dataset.size() / 5;
    sc.embedding_dim = 24;
    sc.total_epochs = 6;
    core::SpiderCache spider{sc};

    const std::size_t batch = 64;
    std::vector<double> hit_ratio_per_epoch;
    double accuracy = 0.0;
    for (std::size_t epoch = 0; epoch < 6; ++epoch) {
        const auto order = spider.epoch_order();
        std::size_t hits = 0;
        for (std::size_t start = 0; start < order.size(); start += batch) {
            const std::size_t count = std::min(batch, order.size() - start);
            std::vector<std::uint32_t> served(count);
            for (std::size_t i = 0; i < count; ++i) {
                const auto lookup = spider.lookup(order[start + i]);
                if (lookup.kind == cache::HitKind::kMiss) {
                    remote.fetch(order[start + i]);
                    spider.on_miss_fetched(order[start + i]);
                    served[i] = order[start + i];
                } else {
                    ++hits;
                    served[i] = lookup.served_id;
                }
            }
            const tensor::Matrix features = dataset.gather_features(served);
            const auto labels = dataset.gather_labels(served);
            const nn::ForwardResult fwd = model.forward(features, labels);
            model.backward_and_step(labels);
            spider.observe_batch(served, fwd.embeddings);
        }
        hit_ratio_per_epoch.push_back(static_cast<double>(hits) /
                                      static_cast<double>(order.size()));
        accuracy = model.evaluate(dataset.test_features(), dataset.test_labels());
        spider.end_epoch(accuracy);
    }

    // The model learned and the cache warmed up far beyond its static share.
    EXPECT_GT(accuracy, 0.4);
    EXPECT_LT(hit_ratio_per_epoch.front(), hit_ratio_per_epoch.back());
    EXPECT_GT(hit_ratio_per_epoch.back(), 0.3);
    EXPECT_GT(remote.total_fetches(), 0U);
}

TEST(Integration, PipelinedIsMatchesSerialScores) {
    // Running the IS stage through the pipelined executor (one batch of
    // slack) must produce exactly the same final scores as running it
    // inline — the paper's claim that the overlap does not change results.
    data::DatasetSpec spec = data::cifar10_like(0.01, 13);
    const data::SyntheticDataset dataset{spec};

    auto run = [&](bool pipelined) {
        nn::MlpConfig mlp;
        mlp.input_dim = dataset.feature_dim();
        mlp.hidden_dims = {32, 16};
        mlp.num_classes = dataset.num_classes();
        mlp.seed = 4;
        nn::MlpClassifier model{mlp};

        core::SpiderCacheConfig sc;
        sc.dataset_size = dataset.size();
        sc.label_of = [&dataset](std::uint32_t id) {
            return dataset.label_of(id);
        };
        sc.cache_items = dataset.size() / 5;
        sc.embedding_dim = 16;
        core::SpiderCache spider{sc};
        core::PipelinedIsExecutor executor;

        const std::size_t batch = 50;
        std::vector<std::uint32_t> order(dataset.size());
        for (std::uint32_t i = 0; i < order.size(); ++i) order[i] = i;

        for (std::size_t start = 0; start < order.size(); start += batch) {
            const std::size_t count = std::min(batch, order.size() - start);
            const std::vector<std::uint32_t> ids{
                order.begin() + static_cast<std::ptrdiff_t>(start),
                order.begin() + static_cast<std::ptrdiff_t>(start + count)};
            const tensor::Matrix features = dataset.gather_features(ids);
            const auto labels = dataset.gather_labels(ids);
            const nn::ForwardResult fwd = model.forward(features, labels);
            model.backward_and_step(labels);
            if (pipelined) {
                // Copy the embeddings into the task: batch k's IS runs
                // while batch k+1 is being loaded/trained.
                executor.submit([&spider, ids, embeddings = fwd.embeddings] {
                    spider.observe_batch(ids, embeddings);
                });
            } else {
                spider.observe_batch(ids, fwd.embeddings);
            }
        }
        executor.drain();
        return std::vector<double>{spider.scores().begin(),
                                   spider.scores().end()};
    };

    const auto serial = run(false);
    const auto pipelined = run(true);
    ASSERT_EQ(serial.size(), pipelined.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        EXPECT_DOUBLE_EQ(serial[i], pipelined[i]) << "sample " << i;
    }
}

TEST(Integration, ScoreSpreadRisesThenFalls) {
    // Figure 6(c): the stddev of importance scores grows during early
    // training (samples diverge) and shrinks as the model converges.
    sim::SimConfig config;
    config.dataset = data::cifar10_like(0.04, 17);
    config.strategy = sim::StrategyKind::kSpider;
    config.epochs = 25;
    config.batch_size = 128;
    config.seed = 9;
    sim::TrainingSimulator simulator{config};
    const auto result = simulator.run();

    std::vector<double> spread;
    for (const auto& epoch : result.epochs) spread.push_back(epoch.score_std);
    const std::size_t peak =
        std::max_element(spread.begin(), spread.end()) - spread.begin();
    // Peak in the interior: rises first, falls later.
    EXPECT_GT(peak, 0U);
    EXPECT_LT(peak, spread.size() - 1);
    EXPECT_GT(spread[peak], spread.front());
    EXPECT_GT(spread[peak], spread.back());
}

TEST(Integration, ElasticShiftsCapacityTowardHomophilyLate) {
    sim::SimConfig config;
    config.dataset = data::cifar10_like(0.04, 19);
    config.strategy = sim::StrategyKind::kSpider;
    config.epochs = 20;
    config.seed = 21;
    config.elastic.r_start = 0.9;
    config.elastic.r_end = 0.7;
    sim::TrainingSimulator simulator{config};
    const auto result = simulator.run();
    EXPECT_LT(result.epochs.back().imp_ratio, 0.9);
    EXPECT_GE(result.epochs.back().imp_ratio, 0.7 - 1e-9);
}

TEST(Integration, HomophilySectionContributesHits) {
    sim::SimConfig config;
    config.dataset = data::cifar10_like(0.04, 23);
    config.strategy = sim::StrategyKind::kSpider;
    config.epochs = 12;
    config.seed = 25;
    const auto result = sim::TrainingSimulator{config}.run();
    std::uint64_t homophily_hits = 0;
    for (const auto& epoch : result.epochs) {
        homophily_hits += epoch.homophily_hits;
        EXPECT_EQ(epoch.substitutions, 0U);  // SpiderCache never substitutes
    }
    EXPECT_GT(homophily_hits, 0U);
}

}  // namespace
}  // namespace spider
