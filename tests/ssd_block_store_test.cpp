// SSD block store suite (DESIGN.md §14): segment-file round trips,
// rotation + reopen of sealed segments, torn-tail and corrupted-CRC
// recovery, bloom FPR against the theoretical bound, whole-segment GC,
// and kill -9 payload durability (flushed bytes come back identical).

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <random>
#include <string>
#include <vector>

#include "storage/ssd_block_store.hpp"

namespace spider::storage {
namespace {

namespace fs = std::filesystem;

class SsdBlockStoreTest : public ::testing::Test {
protected:
    void SetUp() override {
        dir_ = fs::temp_directory_path() /
               ("spider_blockstore_test_" + std::to_string(::getpid()) +
                "_" +
                ::testing::UnitTest::GetInstance()
                    ->current_test_info()
                    ->name());
        fs::remove_all(dir_);
    }
    void TearDown() override { fs::remove_all(dir_); }

    [[nodiscard]] SsdBlockStoreConfig config(
        std::size_t segment_bytes = 4U << 20) const {
        SsdBlockStoreConfig c;
        c.dir = dir_.string();
        c.segment_bytes = segment_bytes;
        return c;
    }

    static std::vector<std::uint8_t> payload_for(std::uint32_t id,
                                                 std::size_t size = 64) {
        std::vector<std::uint8_t> bytes(size);
        std::mt19937 rng{id * 2654435761U + 1};
        for (auto& b : bytes) b = static_cast<std::uint8_t>(rng());
        return bytes;
    }

    [[nodiscard]] std::size_t segment_files() const {
        std::size_t n = 0;
        for (const auto& entry : fs::directory_iterator(dir_)) {
            if (entry.path().extension() == ".spb") ++n;
        }
        return n;
    }

    fs::path dir_;
};

TEST_F(SsdBlockStoreTest, RejectsEmptyDirectory) {
    EXPECT_THROW(SsdBlockStore{SsdBlockStoreConfig{}},
                 std::invalid_argument);
}

TEST_F(SsdBlockStoreTest, RoundTripsPayloadsAndOverwriteWins) {
    SsdBlockStore store{config()};
    for (std::uint32_t id = 0; id < 100; ++id) {
        store.write(id, payload_for(id));
    }
    EXPECT_EQ(store.live_items(), 100U);
    for (std::uint32_t id = 0; id < 100; ++id) {
        const auto got = store.read(id);
        ASSERT_TRUE(got.has_value()) << id;
        EXPECT_EQ(*got, payload_for(id)) << id;
    }
    EXPECT_FALSE(store.read(5000).has_value());

    // Overwrite: the newest version wins even before any flush.
    const auto updated = payload_for(7, 128);
    store.write(7, updated);
    EXPECT_EQ(store.live_items(), 100U);
    EXPECT_EQ(store.read(7).value(), updated);
}

TEST_F(SsdBlockStoreTest, RotationSealsSegmentsAndReopenReadsThemBack) {
    constexpr std::size_t kSegment = 8 * 1024;  // forces many rotations
    {
        SsdBlockStore store{config(kSegment)};
        for (std::uint32_t id = 0; id < 400; ++id) {
            store.write(id, payload_for(id));
        }
        store.flush();
        EXPECT_GE(store.stats().segments_sealed, 3U);
        EXPECT_GT(store.segment_count(), 1U);
        EXPECT_GT(store.sealed_bytes(), 0U);
    }
    // Fresh process: recovery rebuilds the owner map from headers,
    // trailers, and sealed indexes alone.
    SsdBlockStore store{config(kSegment)};
    EXPECT_EQ(store.live_items(), 400U);
    EXPECT_EQ(store.stats().recovered_records, 400U);
    EXPECT_EQ(store.stats().dropped_tail_records, 0U);
    for (std::uint32_t id = 0; id < 400; ++id) {
        const auto got = store.read(id);
        ASSERT_TRUE(got.has_value()) << id;
        EXPECT_EQ(*got, payload_for(id)) << id;
    }
}

TEST_F(SsdBlockStoreTest, TornTailIsTruncatedAndPrefixSurvives) {
    fs::path active;
    {
        SsdBlockStore store{config()};
        for (std::uint32_t id = 0; id < 10; ++id) {
            store.write(id, payload_for(id));
        }
        store.flush();
        for (const auto& entry : fs::directory_iterator(dir_)) {
            active = entry.path();
        }
    }
    // Chop mid-record, the way a crash mid-write leaves the file.
    const auto size = fs::file_size(active);
    fs::resize_file(active, size - 5);

    SsdBlockStore store{config()};
    EXPECT_EQ(store.stats().dropped_tail_records, 1U);
    EXPECT_EQ(store.live_items(), 9U);
    for (std::uint32_t id = 0; id < 9; ++id) {
        EXPECT_EQ(store.read(id).value(), payload_for(id)) << id;
    }
    EXPECT_FALSE(store.read(9).has_value());

    // The store keeps working after the truncated recovery.
    store.write(9, payload_for(9));
    store.flush();
    EXPECT_EQ(store.read(9).value(), payload_for(9));
}

TEST_F(SsdBlockStoreTest, CorruptedRecordCrcEndsTheRecoveryScan) {
    fs::path active;
    std::uint64_t flushed = 0;
    {
        SsdBlockStore store{config()};
        for (std::uint32_t id = 0; id < 10; ++id) {
            store.write(id, payload_for(id));
        }
        store.flush();
        for (const auto& entry : fs::directory_iterator(dir_)) {
            active = entry.path();
            flushed = fs::file_size(active);
        }
    }
    // Flip one byte inside the last record's payload: the frame length
    // is intact but the CRC no longer matches.
    {
        std::fstream f{active, std::ios::in | std::ios::out |
                                   std::ios::binary};
        f.seekp(static_cast<std::streamoff>(flushed - 3));
        char byte = 0;
        f.seekg(static_cast<std::streamoff>(flushed - 3));
        f.read(&byte, 1);
        byte = static_cast<char>(byte ^ 0xFF);
        f.seekp(static_cast<std::streamoff>(flushed - 3));
        f.write(&byte, 1);
    }

    SsdBlockStore store{config()};
    EXPECT_EQ(store.stats().dropped_tail_records, 1U);
    EXPECT_EQ(store.live_items(), 9U);
    for (std::uint32_t id = 0; id < 9; ++id) {
        EXPECT_EQ(store.read(id).value(), payload_for(id)) << id;
    }
    EXPECT_FALSE(store.read(9).has_value());
}

TEST_F(SsdBlockStoreTest, BloomSkipsAbsentIdsWithoutTouchingDisk) {
    SsdBlockStore store{config()};
    for (std::uint32_t id = 0; id < 1000; ++id) {
        store.write(id, payload_for(id, 32));
    }
    store.seal_active();  // bloom is exact after seal
    const std::uint64_t disk_before = store.stats().disk_reads;
    for (std::uint32_t id = 100000; id < 101000; ++id) {
        EXPECT_FALSE(store.read(id).has_value());
    }
    // Bloom-gated: the overwhelming majority of absent probes do zero
    // disk reads (each FP costs at most one index-block read).
    const std::uint64_t fp = store.stats().bloom_false_positives;
    EXPECT_LE(store.stats().disk_reads - disk_before, fp);
    EXPECT_GT(store.stats().bloom_skips, 900U);
}

TEST_F(SsdBlockStoreTest, BloomFalsePositiveRateWithinTwiceTheoretical) {
    constexpr std::size_t kKeys = 4000;
    constexpr std::size_t kProbes = 40000;
    constexpr std::size_t kBitsPerKey = 10;
    BloomFilter bloom{kKeys, kBitsPerKey};
    for (std::uint32_t id = 0; id < kKeys; ++id) bloom.add(id);
    for (std::uint32_t id = 0; id < kKeys; ++id) {
        EXPECT_TRUE(bloom.maybe_contains(id)) << id;  // no false negatives
    }
    std::size_t false_positives = 0;
    for (std::uint32_t id = 1000000; id < 1000000 + kProbes; ++id) {
        if (bloom.maybe_contains(id)) ++false_positives;
    }
    const double fpr =
        static_cast<double>(false_positives) / static_cast<double>(kProbes);
    const double theoretical = BloomFilter::theoretical_fpr(kBitsPerKey);
    EXPECT_GT(theoretical, 0.0);
    EXPECT_LE(fpr, 2.0 * theoretical)
        << "measured " << fpr << " vs theoretical " << theoretical;
}

TEST_F(SsdBlockStoreTest, ZeroBitsPerKeyDisablesTheFilter) {
    BloomFilter bloom{100, 0};
    EXPECT_TRUE(bloom.maybe_contains(42));  // always maybe
    BloomFilter empty{100, 10};
    EXPECT_FALSE(empty.maybe_contains(42));  // nothing added yet
}

TEST_F(SsdBlockStoreTest, GcDeletesFullyStaleSegments) {
    constexpr std::size_t kSegment = 8 * 1024;
    SsdBlockStore store{config(kSegment)};
    for (std::uint32_t id = 0; id < 100; ++id) {
        store.write(id, payload_for(id));
    }
    store.seal_active();
    const std::size_t sealed_before = store.sealed_bytes();
    const std::size_t segments_before = store.segment_count();
    ASSERT_GT(sealed_before, 0U);

    // Overwriting every id makes the old segments fully stale; erase
    // behaves the same way. Whole-segment GC deletes their files.
    for (std::uint32_t id = 0; id < 100; ++id) {
        store.write(id, payload_for(id, 96));
    }
    store.flush();
    EXPECT_GT(store.stats().segments_collected, 0U);
    EXPECT_LT(store.segment_count(), segments_before + 2);
    EXPECT_EQ(segment_files(), store.segment_count());
    // Everything still reads back — from the new copies.
    for (std::uint32_t id = 0; id < 100; ++id) {
        EXPECT_EQ(store.read(id).value(), payload_for(id, 96)) << id;
    }

    // Erase-driven GC: stale-only sealed segments vanish entirely.
    store.seal_active();
    const auto collected_before = store.stats().segments_collected;
    for (std::uint32_t id = 0; id < 100; ++id) store.erase(id);
    EXPECT_GT(store.stats().segments_collected, collected_before);
    EXPECT_EQ(store.live_items(), 0U);
}

TEST_F(SsdBlockStoreTest, KillMinusNineKeepsFlushedPayloadsByteIdentical) {
    SsdBlockStore store{config()};
    for (std::uint32_t id = 0; id < 50; ++id) {
        store.write(id, payload_for(id));
    }
    store.flush();  // durable horizon
    for (std::uint32_t id = 50; id < 80; ++id) {
        store.write(id, payload_for(id));  // page cache only
    }
    store.drop_unflushed();  // kill -9 + restart recovery

    EXPECT_EQ(store.live_items(), 50U);
    for (std::uint32_t id = 0; id < 50; ++id) {
        const auto got = store.read(id);
        ASSERT_TRUE(got.has_value()) << id;
        EXPECT_EQ(*got, payload_for(id)) << id;
    }
    for (std::uint32_t id = 50; id < 80; ++id) {
        EXPECT_FALSE(store.read(id).has_value()) << id;
    }
    // The reborn store accepts new writes on the recovered tail.
    store.write(90, payload_for(90));
    EXPECT_EQ(store.read(90).value(), payload_for(90));
}

TEST_F(SsdBlockStoreTest, ClearRemovesEveryFileAndStartsEmpty) {
    SsdBlockStore store{config(8 * 1024)};
    for (std::uint32_t id = 0; id < 200; ++id) {
        store.write(id, payload_for(id));
    }
    store.flush();
    ASSERT_GT(segment_files(), 0U);
    store.clear();
    EXPECT_EQ(store.live_items(), 0U);
    EXPECT_EQ(store.sealed_bytes(), 0U);
    EXPECT_FALSE(store.read(0).has_value());
    store.write(1, payload_for(1));
    EXPECT_EQ(store.read(1).value(), payload_for(1));
}

TEST_F(SsdBlockStoreTest, ContainsTracksLivenessNotDiskBytes) {
    SsdBlockStore store{config()};
    store.write(1, payload_for(1));
    EXPECT_TRUE(store.contains(1));
    store.erase(1);
    EXPECT_FALSE(store.contains(1));
    // Bytes may still sit in the active segment (LSM tombstone horizon);
    // liveness is the owner map's call, which is what the tier consults.
}

}  // namespace
}  // namespace spider::storage
