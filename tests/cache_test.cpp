// Cache policy tests: LRU/LFU/FIFO/Static/Random eviction semantics, the
// Importance Cache's min-heap admission rule, the Homophily Cache's
// neighbor-list surrogate serving with FIFO replacement, and the two-layer
// semantic cache's Cases 1-4 from the paper's Figure 9 — reproduced with
// the exact scores of the paper's worked example.

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "cache/basic_policies.hpp"
#include "cache/homophily_cache.hpp"
#include "cache/importance_cache.hpp"
#include "cache/semantic_cache.hpp"

namespace spider::cache {
namespace {

// ------------------------------------------------------------------- LRU

TEST(Lru, EvictsLeastRecentlyUsed) {
    LruCache cache{2};
    cache.admit(1);
    cache.admit(2);
    EXPECT_TRUE(cache.touch(1));  // 1 becomes most recent
    const auto evicted = cache.admit(3);
    ASSERT_TRUE(evicted.has_value());
    EXPECT_EQ(*evicted, 2U);  // 2 was least recent
    EXPECT_TRUE(cache.contains(1));
    EXPECT_TRUE(cache.contains(3));
}

TEST(Lru, TouchMissReturnsFalse) {
    LruCache cache{2};
    EXPECT_FALSE(cache.touch(7));
    cache.admit(7);
    EXPECT_TRUE(cache.touch(7));
}

TEST(Lru, DuplicateAdmitIsNoop) {
    LruCache cache{2};
    cache.admit(1);
    EXPECT_EQ(cache.admit(1), std::nullopt);
    EXPECT_EQ(cache.size(), 1U);
}

TEST(Lru, ShrinkEvictsFromColdEnd) {
    LruCache cache{4};
    for (std::uint32_t i = 0; i < 4; ++i) cache.admit(i);
    cache.touch(0);  // 0 hottest
    cache.set_capacity(1);
    EXPECT_EQ(cache.size(), 1U);
    EXPECT_TRUE(cache.contains(0));
}

TEST(Lru, ZeroCapacityAdmitsNothing) {
    LruCache cache{0};
    EXPECT_EQ(cache.admit(1), std::nullopt);
    EXPECT_EQ(cache.size(), 0U);
}

// ------------------------------------------------------------------- LFU

TEST(Lfu, EvictsLeastFrequentlyUsed) {
    LfuCache cache{2};
    cache.admit(1);
    cache.admit(2);
    cache.touch(1);
    cache.touch(1);
    cache.touch(2);
    const auto evicted = cache.admit(3);  // 2 has lower frequency
    ASSERT_TRUE(evicted.has_value());
    EXPECT_EQ(*evicted, 2U);
    EXPECT_TRUE(cache.contains(1));
}

TEST(Lfu, TieBrokenByRecency) {
    LfuCache cache{2};
    cache.admit(1);
    cache.admit(2);  // both frequency 1; 1 older
    const auto evicted = cache.admit(3);
    ASSERT_TRUE(evicted.has_value());
    EXPECT_EQ(*evicted, 1U);
}

TEST(Lfu, SetCapacityShedsColdEntries) {
    LfuCache cache{3};
    cache.admit(1);
    cache.admit(2);
    cache.admit(3);
    cache.touch(3);
    cache.touch(3);
    cache.set_capacity(1);
    EXPECT_EQ(cache.size(), 1U);
    EXPECT_TRUE(cache.contains(3));
}

// ------------------------------------------------------------------ FIFO

TEST(Fifo, EvictsInInsertionOrderRegardlessOfTouches) {
    FifoCache cache{2};
    cache.admit(1);
    cache.admit(2);
    cache.touch(1);  // FIFO ignores recency
    const auto evicted = cache.admit(3);
    ASSERT_TRUE(evicted.has_value());
    EXPECT_EQ(*evicted, 1U);
}

TEST(Fifo, NameAndBasics) {
    FifoCache cache{2};
    EXPECT_EQ(cache.name(), "FIFO");
    EXPECT_FALSE(cache.touch(9));
    cache.admit(9);
    EXPECT_TRUE(cache.touch(9));
}

// --------------------------------------------------------- Static (MinIO)

TEST(StaticCache, NeverReplacesOnceFull) {
    StaticCache cache{2};
    cache.admit(1);
    cache.admit(2);
    EXPECT_EQ(cache.admit(3), std::nullopt);
    EXPECT_FALSE(cache.contains(3));
    EXPECT_TRUE(cache.contains(1));
    EXPECT_TRUE(cache.contains(2));
    EXPECT_EQ(cache.size(), 2U);
}

TEST(StaticCache, HitRatioEqualsCapacityShareUnderFullScan) {
    // CoorDL's property: with one access per sample per epoch, hit ratio
    // converges to capacity / dataset.
    const std::size_t n = 100;
    StaticCache cache{25};
    // Epoch 0: fill.
    for (std::uint32_t i = 0; i < n; ++i) {
        if (!cache.touch(i)) cache.admit(i);
    }
    // Epoch 1: measure.
    std::size_t hits = 0;
    for (std::uint32_t i = 0; i < n; ++i) {
        hits += cache.touch(i) ? 1 : 0;
    }
    EXPECT_EQ(hits, 25U);
}

// ---------------------------------------------------------------- Random

TEST(RandomCache, EvictsSomeResidentWhenFull) {
    RandomCache cache{3, util::Rng{1}};
    cache.admit(1);
    cache.admit(2);
    cache.admit(3);
    const auto evicted = cache.admit(4);
    ASSERT_TRUE(evicted.has_value());
    EXPECT_TRUE(*evicted == 1 || *evicted == 2 || *evicted == 3);
    EXPECT_EQ(cache.size(), 3U);
    EXPECT_TRUE(cache.contains(4));
}

TEST(RandomCache, RandomResidentDrawsFromContents) {
    RandomCache cache{4, util::Rng{2}};
    EXPECT_EQ(cache.random_resident(), std::nullopt);
    cache.admit(10);
    cache.admit(20);
    std::set<std::uint32_t> seen;
    for (int i = 0; i < 100; ++i) {
        const auto r = cache.random_resident();
        ASSERT_TRUE(r.has_value());
        seen.insert(*r);
    }
    EXPECT_EQ(seen, (std::set<std::uint32_t>{10, 20}));
}

// ------------------------------------------------------- Importance Cache

TEST(ImportanceCache, AdmitsFreelyUntilFull) {
    ImportanceCache cache{2};
    EXPECT_TRUE(cache.admit_scored(1, 0.1).admitted);
    EXPECT_TRUE(cache.admit_scored(2, 0.2).admitted);
    EXPECT_EQ(cache.size(), 2U);
    EXPECT_EQ(cache.min_score(), 0.1);
}

TEST(ImportanceCache, RejectsScoresAtOrBelowMin) {
    ImportanceCache cache{2};
    cache.admit_scored(1, 0.3);
    cache.admit_scored(2, 0.5);
    // Paper Case 2: new score 0.2 <= min 0.3 -> no update.
    const auto result = cache.admit_scored(3, 0.2);
    EXPECT_FALSE(result.admitted);
    EXPECT_FALSE(result.evicted.has_value());
    EXPECT_FALSE(cache.contains(3));
    // Equal score also rejected (strict inequality).
    EXPECT_FALSE(cache.admit_scored(4, 0.3).admitted);
}

TEST(ImportanceCache, EvictsMinWhenOutscored) {
    ImportanceCache cache{2};
    cache.admit_scored(5, 0.3);  // the paper's sample e
    cache.admit_scored(1, 0.4);
    // Paper Case 4: sample d (0.6) beats e (0.3) at the heap top.
    const auto result = cache.admit_scored(4, 0.6);
    EXPECT_TRUE(result.admitted);
    ASSERT_TRUE(result.evicted.has_value());
    EXPECT_EQ(*result.evicted, 5U);
    EXPECT_EQ(cache.min_score(), 0.4);
}

TEST(ImportanceCache, UpdateScoreRepositionsEntry) {
    ImportanceCache cache{3};
    cache.admit_scored(1, 0.1);
    cache.admit_scored(2, 0.2);
    cache.admit_scored(3, 0.3);
    cache.update_score(1, 0.9);  // 1 is no longer the min
    EXPECT_EQ(cache.min_score(), 0.2);
    EXPECT_EQ(cache.score_of(1), 0.9);
    const auto result = cache.admit_scored(4, 0.25);
    ASSERT_TRUE(result.evicted.has_value());
    EXPECT_EQ(*result.evicted, 2U);
}

TEST(ImportanceCache, UpdateScoreOnAbsentIsNoop) {
    ImportanceCache cache{2};
    cache.update_score(99, 1.0);
    EXPECT_EQ(cache.size(), 0U);
    EXPECT_EQ(cache.score_of(99), std::nullopt);
}

TEST(ImportanceCache, EraseAndShrink) {
    ImportanceCache cache{3};
    cache.admit_scored(1, 0.1);
    cache.admit_scored(2, 0.2);
    cache.admit_scored(3, 0.3);
    EXPECT_TRUE(cache.erase(2));
    EXPECT_FALSE(cache.erase(2));
    EXPECT_EQ(cache.size(), 2U);
    cache.set_capacity(1);
    // Shrinking evicts the lowest scores first.
    EXPECT_EQ(cache.size(), 1U);
    EXPECT_TRUE(cache.contains(3));
}

TEST(ImportanceCache, DuplicateAdmitRejected) {
    ImportanceCache cache{3};
    EXPECT_TRUE(cache.admit_scored(1, 0.5).admitted);
    EXPECT_FALSE(cache.admit_scored(1, 0.9).admitted);
    EXPECT_EQ(cache.score_of(1), 0.5);
}

// -------------------------------------------------------- Homophily Cache

TEST(HomophilyCache, ServesSurrogateForNeighbors) {
    HomophilyCache cache{4};
    const std::vector<std::uint32_t> neighbors = {10, 11, 12};
    cache.update(1, neighbors);
    EXPECT_TRUE(cache.contains_key(1));
    EXPECT_EQ(cache.surrogate_for(11), 1U);
    EXPECT_EQ(cache.surrogate_for(99), std::nullopt);
}

TEST(HomophilyCache, FifoEvictionRemovesNeighborMappings) {
    HomophilyCache cache{2};
    cache.update(1, std::vector<std::uint32_t>{10});
    cache.update(2, std::vector<std::uint32_t>{20});
    const auto evicted = cache.update(3, std::vector<std::uint32_t>{30});
    ASSERT_TRUE(evicted.has_value());
    EXPECT_EQ(*evicted, 1U);  // oldest out first
    EXPECT_FALSE(cache.contains_key(1));
    EXPECT_EQ(cache.surrogate_for(10), std::nullopt);
    EXPECT_EQ(cache.surrogate_for(20), 2U);
}

TEST(HomophilyCache, ResidentKeyNotReinserted) {
    // Paper: "the highest-degree node ..., which was not previously in the
    // Homophily Cache, is selected".
    HomophilyCache cache{2};
    cache.update(1, std::vector<std::uint32_t>{10});
    EXPECT_EQ(cache.update(1, std::vector<std::uint32_t>{20}), std::nullopt);
    EXPECT_EQ(cache.size(), 1U);
    // Original neighbor list kept.
    EXPECT_EQ(cache.surrogate_for(10), 1U);
    EXPECT_EQ(cache.surrogate_for(20), std::nullopt);
}

TEST(HomophilyCache, OverlappingNeighborListsPreferNewest) {
    HomophilyCache cache{4};
    cache.update(1, std::vector<std::uint32_t>{10, 11});
    cache.update(2, std::vector<std::uint32_t>{11, 12});
    EXPECT_EQ(cache.surrogate_for(11), 2U);  // freshest embedding wins
    EXPECT_EQ(cache.surrogate_for(10), 1U);
}

TEST(HomophilyCache, NeighborsOfExposesList) {
    HomophilyCache cache{2};
    const std::vector<std::uint32_t> neighbors = {5, 6};
    cache.update(9, neighbors);
    const auto stored = cache.neighbors_of(9);
    ASSERT_EQ(stored.size(), 2U);
    EXPECT_EQ(stored[0], 5U);
    EXPECT_TRUE(cache.neighbors_of(1234).empty());
}

TEST(HomophilyCache, ShrinkEvictsOldestFirst) {
    HomophilyCache cache{3};
    cache.update(1, std::vector<std::uint32_t>{10});
    cache.update(2, std::vector<std::uint32_t>{20});
    cache.update(3, std::vector<std::uint32_t>{30});
    cache.set_capacity(1);
    EXPECT_EQ(cache.size(), 1U);
    EXPECT_TRUE(cache.contains_key(3));
    EXPECT_EQ(cache.surrogate_for(10), std::nullopt);
}

TEST(HomophilyCache, ZeroCapacityIsInert) {
    HomophilyCache cache{0};
    EXPECT_EQ(cache.update(1, std::vector<std::uint32_t>{10}), std::nullopt);
    EXPECT_EQ(cache.size(), 0U);
}

// -------------------------------------------------- Two-layer (Figure 9)

class SemanticCacheFigure9 : public ::testing::Test {
protected:
    // Reproduce the paper's worked example: Importance Cache holds
    // a (0.4) and e (0.3, the min-heap top); Homophily Cache holds node h
    // whose neighbor list contains c.
    SemanticCacheFigure9() : cache_{10, 0.5} {
        cache_.importance().admit_scored(kA, 0.4);
        cache_.importance().admit_scored(kE, 0.3);
        // Fill to capacity so admission requires beating the min.
        cache_.importance().admit_scored(90, 0.9);
        cache_.importance().admit_scored(91, 0.8);
        cache_.importance().admit_scored(92, 0.7);
        cache_.update_homophily(kH, std::vector<std::uint32_t>{kC});
    }

    static constexpr std::uint32_t kA = 1, kB = 2, kC = 3, kD = 4, kE = 5,
                                   kH = 8;
    TwoLayerSemanticCache cache_;
};

TEST_F(SemanticCacheFigure9, Case1ImportanceHitServedDirectly) {
    const Lookup lookup = cache_.lookup(kA);
    EXPECT_EQ(lookup.kind, HitKind::kImportance);
    EXPECT_EQ(lookup.served_id, kA);
}

TEST_F(SemanticCacheFigure9, Case2LowScoreMissDoesNotUpdate) {
    const Lookup lookup = cache_.lookup(kB);
    EXPECT_EQ(lookup.kind, HitKind::kMiss);
    // b's score 0.2 does not beat e's 0.3 at the heap top.
    const auto result = cache_.on_miss_fetched(kB, 0.2);
    EXPECT_FALSE(result.admitted);
    EXPECT_TRUE(cache_.importance().contains(kE));
    EXPECT_FALSE(cache_.importance().contains(kB));
}

TEST_F(SemanticCacheFigure9, Case3HomophilyNeighborServedSurrogate) {
    const Lookup lookup = cache_.lookup(kC);
    EXPECT_EQ(lookup.kind, HitKind::kHomophily);
    EXPECT_EQ(lookup.served_id, kH);  // h fetched as replacement
}

TEST_F(SemanticCacheFigure9, Case4HighScoreMissEvictsMin) {
    const Lookup lookup = cache_.lookup(kD);
    EXPECT_EQ(lookup.kind, HitKind::kMiss);
    const auto result = cache_.on_miss_fetched(kD, 0.6);
    EXPECT_TRUE(result.admitted);
    ASSERT_TRUE(result.evicted.has_value());
    EXPECT_EQ(*result.evicted, kE);  // e (0.3) evicted, d inserted
    EXPECT_TRUE(cache_.importance().contains(kD));
}

TEST_F(SemanticCacheFigure9, ResidentHomophilyKeyIsItsOwnSurrogate) {
    const Lookup lookup = cache_.lookup(kH);
    EXPECT_EQ(lookup.kind, HitKind::kHomophily);
    EXPECT_EQ(lookup.served_id, kH);
}

TEST(SemanticCache, SectionsSizedByImpRatio) {
    TwoLayerSemanticCache cache{100, 0.9};
    EXPECT_EQ(cache.importance().capacity(), 90U);
    EXPECT_EQ(cache.homophily().capacity(), 10U);
    cache.set_imp_ratio(0.5);
    EXPECT_EQ(cache.importance().capacity(), 50U);
    EXPECT_EQ(cache.homophily().capacity(), 50U);
    EXPECT_DOUBLE_EQ(cache.imp_ratio(), 0.5);
}

TEST(SemanticCache, ShrinkingImportanceSectionEvictsLowScores) {
    TwoLayerSemanticCache cache{10, 1.0};
    for (std::uint32_t i = 0; i < 10; ++i) {
        cache.importance().admit_scored(i, 0.1 * (i + 1));
    }
    cache.set_imp_ratio(0.5);
    EXPECT_EQ(cache.importance().size(), 5U);
    EXPECT_TRUE(cache.importance().contains(9));   // top scores survive
    EXPECT_FALSE(cache.importance().contains(0));  // low scores evicted
}

// Section exclusivity (paper §4.2: "no data exchange" between sections) —
// an id resident in one section must never be admitted to the other, in
// either order.
TEST(SemanticCache, HomophilyKeyNotAdmittedToImportance) {
    TwoLayerSemanticCache cache{10, 0.5};
    const std::uint32_t nb[] = {100, 101};
    cache.update_homophily(7, nb);
    ASSERT_EQ(cache.lookup(7).kind, HitKind::kHomophily);
    // A very high score would win admission — exclusivity must veto it.
    const auto result = cache.on_miss_fetched(7, 0.99);
    EXPECT_FALSE(result.admitted);
    EXPECT_FALSE(result.evicted.has_value());
    EXPECT_FALSE(cache.importance().contains(7));
    EXPECT_TRUE(cache.homophily().contains_key(7));
    EXPECT_EQ(cache.importance_size() + cache.homophily_size(), 1U);
}

TEST(SemanticCache, ImportanceResidentNotInsertedAsHomophilyKey) {
    TwoLayerSemanticCache cache{10, 0.5};
    cache.on_miss_fetched(7, 0.9);
    ASSERT_EQ(cache.lookup(7).kind, HitKind::kImportance);
    const std::uint32_t nb[] = {100, 101};
    EXPECT_EQ(cache.update_homophily(7, nb), std::nullopt);
    EXPECT_FALSE(cache.homophily().contains_key(7));
    EXPECT_TRUE(cache.importance().contains(7));
    // Its would-be neighbors gained no surrogate either.
    EXPECT_EQ(cache.lookup(100).kind, HitKind::kMiss);
    EXPECT_EQ(cache.importance_size() + cache.homophily_size(), 1U);
}

TEST(SemanticCache, ExclusivityHoldsWhenSharded) {
    TwoLayerSemanticCache cache{32, 0.5, 4};
    const std::uint32_t nb[] = {100};
    cache.update_homophily(7, nb);
    EXPECT_FALSE(cache.on_miss_fetched(7, 0.99).admitted);
    cache.on_miss_fetched(9, 0.9);
    EXPECT_EQ(cache.update_homophily(9, nb), std::nullopt);
    EXPECT_EQ(cache.homophily_size(), 1U);  // still only key 7
    EXPECT_EQ(cache.lookup(9).kind, HitKind::kImportance);
}

TEST(SemanticCache, RejectsBadRatio) {
    EXPECT_THROW((TwoLayerSemanticCache{10, 0.0}), std::invalid_argument);
    EXPECT_THROW((TwoLayerSemanticCache{10, 1.5}), std::invalid_argument);
}

TEST(SemanticCache, RatioClampedOnUpdate) {
    TwoLayerSemanticCache cache{10, 0.9};
    cache.set_imp_ratio(-5.0);  // clamped to a small positive floor
    EXPECT_GT(cache.imp_ratio(), 0.0);
    cache.set_imp_ratio(2.0);
    EXPECT_LE(cache.imp_ratio(), 1.0);
}

}  // namespace
}  // namespace spider::cache
