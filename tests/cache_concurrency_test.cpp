// Concurrency stress suite for the sharded TwoLayerSemanticCache, the
// PrefetchPipeline, and the RemoteStore fetch-slot cap (DESIGN.md §8).
// Every test name contains "Concurrent" so the whole file runs under the
// ThreadSanitizer tier of tools/run_tier1.sh.
//
// The assertions are quiescent-state invariants (sizes within capacity,
// exclusivity, conserved counters) — under real interleavings the exact
// hit/miss sequence is unspecified, but the structures must never corrupt
// and never exceed their slices, even while an elastic thread repartitions
// the sections mid-flight.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "cache/semantic_cache.hpp"
#include "core/prefetch.hpp"
#include "data/dataset.hpp"
#include "storage/remote_store.hpp"
#include "util/rng.hpp"

namespace spider {
namespace {

// ------------------------------------------------------- TwoLayer, sharded

TEST(CacheConcurrency, ConcurrentMixedOpsPreserveInvariants) {
    constexpr std::size_t kCapacity = 256;
    constexpr std::size_t kThreads = 4;
    constexpr int kOpsPerThread = 20000;
    constexpr std::uint32_t kIdSpace = 4096;

    cache::TwoLayerSemanticCache cache{kCapacity, 0.7, /*shards=*/8};

    std::vector<std::thread> workers;
    workers.reserve(kThreads);
    for (std::size_t t = 0; t < kThreads; ++t) {
        workers.emplace_back([&cache, t] {
            util::Rng rng{0x5EED0000ULL + t};
            for (int op = 0; op < kOpsPerThread; ++op) {
                const auto id = static_cast<std::uint32_t>(
                    rng.uniform_index(kIdSpace));
                const double roll = rng.uniform();
                if (roll < 0.80) {
                    (void)cache.lookup(id);
                } else if (roll < 0.95) {
                    cache.on_miss_fetched(id, rng.uniform());
                } else if (roll < 0.99) {
                    const std::uint32_t nb[] = {id + 1, id + 2, id + 3};
                    cache.update_homophily(id, nb);
                } else {
                    cache.update_importance_score(id, rng.uniform());
                }
            }
        });
    }
    // Elastic thread: repartition while the workers hammer the sections.
    std::atomic<bool> stop{false};
    std::thread elastic{[&cache, &stop] {
        bool high = false;
        while (!stop.load(std::memory_order_relaxed)) {
            cache.set_imp_ratio(high ? 0.9 : 0.3);
            high = !high;
            std::this_thread::yield();
        }
    }};
    for (auto& w : workers) w.join();
    stop.store(true, std::memory_order_relaxed);
    elastic.join();

    // Quiescent invariants: capacity partition intact, no slice overflow,
    // sections exclusive per shard.
    EXPECT_EQ(cache.importance_capacity() + cache.homophily_capacity(),
              kCapacity);
    for (std::size_t s = 0; s < cache.num_shards(); ++s) {
        EXPECT_LE(cache.shard_importance_size(s),
                  cache.shard_importance_capacity(s))
            << "shard " << s;
        EXPECT_LE(cache.shard_homophily_size(s),
                  cache.shard_homophily_capacity(s))
            << "shard " << s;
    }
    EXPECT_LE(cache.importance_size() + cache.homophily_size(), kCapacity);
}

TEST(CacheConcurrency, ConcurrentLookupsDuringElasticRepartition) {
    cache::TwoLayerSemanticCache cache{128, 0.5, /*shards=*/4};
    for (std::uint32_t id = 0; id < 512; ++id) {
        cache.on_miss_fetched(id, 0.5 + 0.001 * static_cast<double>(id));
    }

    std::atomic<std::uint64_t> hits{0};
    std::vector<std::thread> readers;
    for (int t = 0; t < 4; ++t) {
        readers.emplace_back([&cache, &hits, t] {
            util::Rng rng{0xABC0ULL + static_cast<std::uint64_t>(t)};
            for (int op = 0; op < 30000; ++op) {
                const auto id =
                    static_cast<std::uint32_t>(rng.uniform_index(512));
                if (cache.lookup(id).kind != cache::HitKind::kMiss) {
                    hits.fetch_add(1, std::memory_order_relaxed);
                }
            }
        });
    }
    for (const double ratio : {0.1, 0.9, 0.2, 0.8, 0.5}) {
        cache.set_imp_ratio(ratio);
        std::this_thread::yield();
    }
    for (auto& r : readers) r.join();
    // Some residents must have survived every repartition.
    EXPECT_GT(hits.load(), 0U);
}

// ---------------------------------------------------------- PrefetchPipeline

TEST(PrefetchConcurrency, ConcurrentPrefetchDedupsAndBoundsWindow) {
    std::atomic<std::uint64_t> fetches{0};
    core::PrefetchPipeline::Config pc;
    pc.threads = 2;
    pc.max_in_flight = 64;
    core::PrefetchPipeline pipeline{
        [](std::uint32_t id) { return id % 5 == 0; },  // every 5th resident
        [&fetches](std::uint32_t) {
            fetches.fetch_add(1, std::memory_order_relaxed);
        },
        pc};

    std::vector<std::uint32_t> ids(512);
    for (std::uint32_t i = 0; i < 512; ++i) ids[i] = i % 128;  // heavy dups

    std::vector<std::thread> issuers;
    for (int t = 0; t < 4; ++t) {
        issuers.emplace_back([&pipeline, &ids] { pipeline.prefetch(ids); });
    }
    for (auto& th : issuers) th.join();
    pipeline.drain();

    const auto stats = pipeline.stats();
    // Dedup: at most one issue per distinct non-resident id at any moment;
    // the window bounds what is outstanding, never the totals conservation.
    EXPECT_EQ(stats.issued, fetches.load());
    EXPECT_EQ(stats.requested, stats.issued + stats.skipped_cached +
                                   stats.skipped_in_flight +
                                   stats.skipped_window);
    EXPECT_LE(stats.issued, 128U);  // <= distinct ids ever offered
    EXPECT_GT(stats.skipped_in_flight + stats.skipped_window, 0U);
}

TEST(PrefetchConcurrency, ConcurrentConsumeHidesCompletedFetches) {
    core::PrefetchPipeline::Config pc;
    pc.threads = 2;
    pc.max_in_flight = 256;
    core::PrefetchPipeline pipeline{
        [](std::uint32_t) { return false; },
        [](std::uint32_t) { std::this_thread::yield(); }, pc};

    std::vector<std::uint32_t> ids(200);
    for (std::uint32_t i = 0; i < 200; ++i) ids[i] = i;
    const std::size_t issued = pipeline.prefetch(ids);
    EXPECT_EQ(issued, 200U);

    // Demand side from several threads: every issued id must be consumed
    // exactly once (true), unknown ids never (false).
    std::atomic<std::uint64_t> consumed{0};
    std::vector<std::thread> demanders;
    for (int t = 0; t < 4; ++t) {
        demanders.emplace_back([&pipeline, &consumed, t] {
            for (std::uint32_t id = static_cast<std::uint32_t>(t); id < 200;
                 id += 4) {
                if (pipeline.consume(id)) {
                    consumed.fetch_add(1, std::memory_order_relaxed);
                }
            }
        });
    }
    for (auto& th : demanders) th.join();
    EXPECT_EQ(consumed.load(), 200U);
    EXPECT_FALSE(pipeline.consume(9999));
    const auto stats = pipeline.stats();
    EXPECT_EQ(stats.hidden + stats.waited, 200U);
}

TEST(PrefetchConcurrency, ConcurrentDiscardReadyFreesWindowSlots) {
    core::PrefetchPipeline::Config pc;
    pc.threads = 1;
    pc.max_in_flight = 8;
    core::PrefetchPipeline pipeline{[](std::uint32_t) { return false; },
                                    [](std::uint32_t) {}, pc};

    std::vector<std::uint32_t> first{1, 2, 3, 4, 5, 6, 7, 8};
    EXPECT_EQ(pipeline.prefetch(first), 8U);
    pipeline.drain();
    // Window full of completed-but-unconsumed entries: new ids are dropped.
    std::vector<std::uint32_t> second{11, 12};
    EXPECT_EQ(pipeline.prefetch(second), 0U);
    EXPECT_EQ(pipeline.discard_ready(), 8U);
    EXPECT_EQ(pipeline.prefetch(second), 2U);
    pipeline.drain();
}

// --------------------------------------------------- RemoteStore fetch slots

TEST(RemoteStoreConcurrency, ConcurrentFetchesRespectSlotCap) {
    data::DatasetSpec spec;
    spec.name = "slots";
    spec.num_samples = 256;
    spec.num_classes = 4;
    spec.feature_dim = 8;
    data::SyntheticDataset dataset{spec};
    storage::RemoteStore store{dataset, {}};
    constexpr std::size_t kCap = 3;
    store.set_fetch_slot_cap(kCap);

    std::vector<std::thread> fetchers;
    for (int t = 0; t < 8; ++t) {
        fetchers.emplace_back([&store, t] {
            for (std::uint32_t i = 0; i < 200; ++i) {
                (void)store.fetch((static_cast<std::uint32_t>(t) * 200 + i) %
                                  256);
            }
        });
    }
    for (auto& f : fetchers) f.join();

    EXPECT_EQ(store.total_fetches(), 8U * 200U);
    EXPECT_LE(store.peak_in_flight(), kCap);
    store.set_fetch_slot_cap(0);  // uncapped mode still works afterwards
    (void)store.fetch(0);
    EXPECT_EQ(store.total_fetches(), 8U * 200U + 1U);
}

}  // namespace
}  // namespace spider
