// Concurrency stress suite for the sharded TwoLayerSemanticCache, the
// PrefetchPipeline, and the RemoteStore fetch-slot cap (DESIGN.md §8).
// Every test name contains "Concurrent" so the whole file runs under the
// ThreadSanitizer tier of tools/run_tier1.sh.
//
// The assertions are quiescent-state invariants (sizes within capacity,
// exclusivity, conserved counters) — under real interleavings the exact
// hit/miss sequence is unspecified, but the structures must never corrupt
// and never exceed their slices, even while an elastic thread repartitions
// the sections mid-flight.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <stdexcept>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "cache/semantic_cache.hpp"
#include "core/prefetch.hpp"
#include "data/dataset.hpp"
#include "storage/remote_store.hpp"
#include "util/rng.hpp"

namespace spider {
namespace {

// ------------------------------------------------------- TwoLayer, sharded

// Both read-path modes (DESIGN.md §8.4): true = seqlock residency view,
// false = every read through the shard mutex. Invariants must hold in both.
class CacheConcurrencyMode : public ::testing::TestWithParam<bool> {};

TEST_P(CacheConcurrencyMode, ConcurrentMixedOpsPreserveInvariants) {
    constexpr std::size_t kCapacity = 256;
    constexpr std::size_t kThreads = 4;
    constexpr int kOpsPerThread = 20000;
    constexpr std::uint32_t kIdSpace = 4096;

    cache::TwoLayerSemanticCache cache{kCapacity, 0.7, /*shards=*/8,
                                       /*lockfree_reads=*/GetParam()};

    std::vector<std::thread> workers;
    workers.reserve(kThreads);
    for (std::size_t t = 0; t < kThreads; ++t) {
        workers.emplace_back([&cache, t] {
            util::Rng rng{0x5EED0000ULL + t};
            for (int op = 0; op < kOpsPerThread; ++op) {
                const auto id = static_cast<std::uint32_t>(
                    rng.uniform_index(kIdSpace));
                const double roll = rng.uniform();
                if (roll < 0.80) {
                    (void)cache.lookup(id);
                } else if (roll < 0.95) {
                    cache.on_miss_fetched(id, rng.uniform());
                } else if (roll < 0.99) {
                    const std::uint32_t nb[] = {id + 1, id + 2, id + 3};
                    cache.update_homophily(id, nb);
                } else {
                    cache.update_importance_score(id, rng.uniform());
                }
            }
        });
    }
    // Elastic thread: repartition while the workers hammer the sections.
    std::atomic<bool> stop{false};
    std::thread elastic{[&cache, &stop] {
        bool high = false;
        while (!stop.load(std::memory_order_relaxed)) {
            cache.set_imp_ratio(high ? 0.9 : 0.3);
            high = !high;
            std::this_thread::yield();
        }
    }};
    for (auto& w : workers) w.join();
    stop.store(true, std::memory_order_relaxed);
    elastic.join();

    // Quiescent invariants: capacity partition intact, no slice overflow,
    // sections exclusive per shard.
    EXPECT_EQ(cache.importance_capacity() + cache.homophily_capacity(),
              kCapacity);
    for (std::size_t s = 0; s < cache.num_shards(); ++s) {
        EXPECT_LE(cache.shard_importance_size(s),
                  cache.shard_importance_capacity(s))
            << "shard " << s;
        EXPECT_LE(cache.shard_homophily_size(s),
                  cache.shard_homophily_capacity(s))
            << "shard " << s;
    }
    EXPECT_LE(cache.importance_size() + cache.homophily_size(), kCapacity);
}

TEST_P(CacheConcurrencyMode, ConcurrentLookupsDuringElasticRepartition) {
    cache::TwoLayerSemanticCache cache{128, 0.5, /*shards=*/4,
                                       /*lockfree_reads=*/GetParam()};
    for (std::uint32_t id = 0; id < 512; ++id) {
        cache.on_miss_fetched(id, 0.5 + 0.001 * static_cast<double>(id));
    }

    std::atomic<std::uint64_t> hits{0};
    std::vector<std::thread> readers;
    for (int t = 0; t < 4; ++t) {
        readers.emplace_back([&cache, &hits, t] {
            util::Rng rng{0xABC0ULL + static_cast<std::uint64_t>(t)};
            for (int op = 0; op < 30000; ++op) {
                const auto id =
                    static_cast<std::uint32_t>(rng.uniform_index(512));
                if (cache.lookup(id).kind != cache::HitKind::kMiss) {
                    hits.fetch_add(1, std::memory_order_relaxed);
                }
            }
        });
    }
    for (const double ratio : {0.1, 0.9, 0.2, 0.8, 0.5}) {
        cache.set_imp_ratio(ratio);
        std::this_thread::yield();
    }
    for (auto& r : readers) r.join();
    // Some residents must have survived every repartition.
    EXPECT_GT(hits.load(), 0U);
}

// Regression (dangling-surrogate window): sharded update_homophily inserts
// the key under its shard's lock, releases it, then publishes the
// neighbor-index slices. An eviction of the key inside that window (here:
// an elastic shrink of the homophily section to zero, injected through the
// publish hook) used to run its unindex pass before the entries existed —
// the publish loop then left index entries pointing at a non-resident key
// forever. The fix re-checks the key's insert generation after publishing
// and retracts its own entries when the generation is gone.
TEST(CacheConcurrency, ConcurrentEvictionDuringPublishLeavesNoDanglingIndex) {
    cache::TwoLayerSemanticCache cache{32, 0.5, /*shards=*/4};

    const std::uint32_t key = 1;
    // Neighbors spread over shards other than the key's.
    std::vector<std::uint32_t> neighbors;
    for (std::uint32_t candidate = 100; neighbors.size() < 3; ++candidate) {
        if (cache.shard_of(candidate) != cache.shard_of(key)) {
            neighbors.push_back(candidate);
        }
    }

    bool fired = false;
    cache.set_homophily_publish_hook([&cache, &fired] {
        if (fired) return;  // the shrink below must not re-trigger itself
        fired = true;
        // Concurrent-eviction stand-in: shrink homophily to zero — the key
        // is evicted and unindexed before its index entries are published.
        cache.set_imp_ratio(1.0);
    });
    cache.update_homophily(key, neighbors);
    ASSERT_TRUE(fired);
    ASSERT_EQ(cache.homophily_size(), 0U);

    // No neighbor may resolve to the evicted key (pre-fix: all three did,
    // permanently — the index entries had no owner left to retract them).
    for (const std::uint32_t neighbor : neighbors) {
        const cache::Lookup via = cache.lookup(neighbor);
        EXPECT_EQ(via.kind, cache::HitKind::kMiss)
            << "neighbor " << neighbor << " still serves surrogate "
            << via.served_id;
    }
    const auto frozen = cache.freeze();
    for (const auto& shard : frozen.shards) {
        EXPECT_TRUE(shard.neighbor_index.empty());
    }
}

// Randomized multi-threaded oracle: workers hammer the cache with the full
// op mix (including elastic repartitions); a checker repeatedly pauses
// them at op boundaries, freezes the cache (all shard locks), and checks
// the cross-shard invariants the lock protocol is supposed to preserve:
//  (a) every neighbor-index value names a resident homophily key,
//  (b) no id is resident in both sections,
//  (c) aggregate sizes never exceed capacities,
//  (d) each shard's seqlock residency view mirrors its sections exactly.
TEST_P(CacheConcurrencyMode, ConcurrentOracleFreezeFindsNoInvariantBreach) {
    constexpr std::size_t kCapacity = 192;
    constexpr std::size_t kThreads = 4;
    constexpr int kOpsPerThread = 12000;
    constexpr std::uint32_t kIdSpace = 2048;
    constexpr int kFreezes = 25;

    cache::TwoLayerSemanticCache cache{kCapacity, 0.6, /*shards=*/8,
                                       /*lockfree_reads=*/GetParam()};

    std::atomic<bool> pause{false};
    std::atomic<std::size_t> parked{0};
    std::atomic<std::size_t> running{kThreads};
    std::vector<std::thread> workers;
    workers.reserve(kThreads);
    for (std::size_t t = 0; t < kThreads; ++t) {
        workers.emplace_back([&, t] {
            util::Rng rng{0x0AC1E000ULL + t};
            for (int op = 0; op < kOpsPerThread; ++op) {
                // Invariant (a) only holds between operations (inside one
                // update_homophily the index is legitimately mid-rewrite),
                // so workers park at op boundaries while the oracle runs.
                if (pause.load(std::memory_order_acquire)) {
                    parked.fetch_add(1, std::memory_order_acq_rel);
                    while (pause.load(std::memory_order_acquire)) {
                        std::this_thread::yield();
                    }
                    parked.fetch_sub(1, std::memory_order_acq_rel);
                }
                const auto id = static_cast<std::uint32_t>(
                    rng.uniform_index(kIdSpace));
                const double roll = rng.uniform();
                if (roll < 0.70) {
                    (void)cache.lookup(id);
                    (void)cache.probe(id);
                } else if (roll < 0.88) {
                    cache.on_miss_fetched(id, rng.uniform());
                } else if (roll < 0.95) {
                    const std::uint32_t nb[] = {id + 1, id + 7, id + 21};
                    cache.update_homophily(id, nb);
                } else if (roll < 0.99) {
                    cache.update_importance_score(id, rng.uniform());
                } else {
                    cache.set_imp_ratio(0.2 + 0.6 * rng.uniform());
                }
            }
            running.fetch_sub(1, std::memory_order_acq_rel);
        });
    }

    for (int round = 0; round < kFreezes; ++round) {
        pause.store(true, std::memory_order_release);
        while (parked.load(std::memory_order_acquire) <
               running.load(std::memory_order_acquire)) {
            std::this_thread::yield();
        }
        const auto frozen = cache.freeze();

        std::unordered_set<std::uint32_t> importance_ids;
        std::unordered_map<std::uint32_t, double> importance_scores;
        std::unordered_set<std::uint32_t> hom_keys;
        std::size_t imp_size = 0;
        std::size_t hom_size = 0;
        for (const auto& shard : frozen.shards) {
            for (const auto& [id, score] : shard.importance) {
                importance_ids.insert(id);
                importance_scores.emplace(id, score);
            }
            for (const std::uint32_t key : shard.homophily_keys) {
                hom_keys.insert(key);
            }
            imp_size += shard.importance.size();
            hom_size += shard.homophily_keys.size();
            // (c) per-shard slices respected.
            ASSERT_LE(shard.importance.size(), shard.importance_capacity);
            ASSERT_LE(shard.homophily_keys.size(), shard.homophily_capacity);
        }
        // (b) sections exclusive.
        for (const std::uint32_t key : hom_keys) {
            ASSERT_FALSE(importance_ids.contains(key))
                << "id " << key << " resident in both sections";
        }
        // (a) index soundness: every listed key is a resident hom key.
        for (const auto& shard : frozen.shards) {
            for (const auto& [neighbor, keys] : shard.neighbor_index) {
                for (const std::uint32_t key : keys) {
                    ASSERT_TRUE(hom_keys.contains(key))
                        << "neighbor " << neighbor
                        << " names non-resident surrogate " << key;
                }
            }
        }
        // (d) view <-> section parity, per shard.
        for (std::size_t s = 0; s < frozen.shards.size(); ++s) {
            const auto& shard = frozen.shards[s];
            std::size_t imp_flags = 0;
            std::size_t hom_flags = 0;
            std::size_t sur_flags = 0;
            for (const auto& [id, probe] : shard.view) {
                using View = cache::ShardResidencyView;
                if (probe.flags & View::kImportance) {
                    ++imp_flags;
                    const auto it = importance_scores.find(id);
                    ASSERT_NE(it, importance_scores.end())
                        << "view lists non-resident importance id " << id;
                    ASSERT_EQ(it->second, probe.score) << "id " << id;
                }
                if (probe.flags & View::kHomKey) {
                    ++hom_flags;
                    ASSERT_TRUE(hom_keys.contains(id))
                        << "view lists non-resident hom key " << id;
                }
                if (probe.flags & View::kSurrogate) {
                    ++sur_flags;
                    ASSERT_TRUE(hom_keys.contains(probe.surrogate))
                        << "view surrogate for " << id
                        << " names non-resident key " << probe.surrogate;
                }
            }
            ASSERT_EQ(imp_flags, shard.importance.size()) << "shard " << s;
            ASSERT_EQ(hom_flags, shard.homophily_keys.size())
                << "shard " << s;
            std::size_t index_entries = 0;
            for (const auto& [neighbor, keys] : shard.neighbor_index) {
                if (!keys.empty()) ++index_entries;
            }
            ASSERT_EQ(sur_flags, index_entries) << "shard " << s;
        }
        pause.store(false, std::memory_order_release);
        if (running.load(std::memory_order_acquire) == 0) break;
        std::this_thread::yield();
    }
    pause.store(false, std::memory_order_release);
    for (auto& w : workers) w.join();
}

INSTANTIATE_TEST_SUITE_P(ReadModes, CacheConcurrencyMode,
                         ::testing::Values(true, false));

// ---------------------------------------------------------- PrefetchPipeline

TEST(PrefetchConcurrency, ConcurrentPrefetchDedupsAndBoundsWindow) {
    std::atomic<std::uint64_t> fetches{0};
    core::PrefetchPipeline::Config pc;
    pc.threads = 2;
    pc.max_in_flight = 64;
    core::PrefetchPipeline pipeline{
        [](std::uint32_t id) { return id % 5 == 0; },  // every 5th resident
        [&fetches](std::uint32_t) {
            fetches.fetch_add(1, std::memory_order_relaxed);
        },
        pc};

    std::vector<std::uint32_t> ids(512);
    for (std::uint32_t i = 0; i < 512; ++i) ids[i] = i % 128;  // heavy dups

    std::vector<std::thread> issuers;
    for (int t = 0; t < 4; ++t) {
        issuers.emplace_back([&pipeline, &ids] { pipeline.prefetch(ids); });
    }
    for (auto& th : issuers) th.join();
    pipeline.drain();

    const auto stats = pipeline.stats();
    // Dedup: at most one issue per distinct non-resident id at any moment;
    // the window bounds what is outstanding, never the totals conservation.
    EXPECT_EQ(stats.issued, fetches.load());
    EXPECT_EQ(stats.requested, stats.issued + stats.skipped_cached +
                                   stats.skipped_in_flight +
                                   stats.skipped_window);
    EXPECT_LE(stats.issued, 128U);  // <= distinct ids ever offered
    EXPECT_GT(stats.skipped_in_flight + stats.skipped_window, 0U);
}

TEST(PrefetchConcurrency, ConcurrentConsumeHidesCompletedFetches) {
    core::PrefetchPipeline::Config pc;
    pc.threads = 2;
    pc.max_in_flight = 256;
    core::PrefetchPipeline pipeline{
        [](std::uint32_t) { return false; },
        [](std::uint32_t) { std::this_thread::yield(); }, pc};

    std::vector<std::uint32_t> ids(200);
    for (std::uint32_t i = 0; i < 200; ++i) ids[i] = i;
    const std::size_t issued = pipeline.prefetch(ids);
    EXPECT_EQ(issued, 200U);

    // Demand side from several threads: every issued id must be consumed
    // exactly once (true), unknown ids never (false).
    std::atomic<std::uint64_t> consumed{0};
    std::vector<std::thread> demanders;
    for (int t = 0; t < 4; ++t) {
        demanders.emplace_back([&pipeline, &consumed, t] {
            for (std::uint32_t id = static_cast<std::uint32_t>(t); id < 200;
                 id += 4) {
                if (pipeline.consume(id)) {
                    consumed.fetch_add(1, std::memory_order_relaxed);
                }
            }
        });
    }
    for (auto& th : demanders) th.join();
    EXPECT_EQ(consumed.load(), 200U);
    EXPECT_FALSE(pipeline.consume(9999));
    const auto stats = pipeline.stats();
    EXPECT_EQ(stats.hidden + stats.waited, 200U);
}

TEST(PrefetchConcurrency, ConcurrentFetchExceptionsPropagateToConsumers) {
    core::PrefetchPipeline::Config pc;
    pc.threads = 2;
    pc.max_in_flight = 128;
    core::PrefetchPipeline pipeline{
        [](std::uint32_t) { return false; },
        [](std::uint32_t id) {
            if (id % 2 == 1) throw std::runtime_error{"backend down"};
        },
        pc};

    std::vector<std::uint32_t> ids(100);
    for (std::uint32_t i = 0; i < 100; ++i) ids[i] = i;
    EXPECT_EQ(pipeline.prefetch(ids), 100U);

    // Several demand threads: even ids consume clean, odd ids rethrow the
    // background failure to exactly the consumer that claims them.
    std::atomic<std::uint64_t> clean{0};
    std::atomic<std::uint64_t> rethrown{0};
    std::vector<std::thread> demanders;
    for (int t = 0; t < 4; ++t) {
        demanders.emplace_back([&pipeline, &clean, &rethrown, t] {
            for (std::uint32_t id = static_cast<std::uint32_t>(t); id < 100;
                 id += 4) {
                try {
                    if (pipeline.consume(id)) {
                        clean.fetch_add(1, std::memory_order_relaxed);
                    }
                } catch (const std::runtime_error&) {
                    rethrown.fetch_add(1, std::memory_order_relaxed);
                }
            }
        });
    }
    for (auto& th : demanders) th.join();
    EXPECT_EQ(clean.load(), 50U);
    EXPECT_EQ(rethrown.load(), 50U);
    EXPECT_EQ(pipeline.stats().failed, 50U);

    // Every slot (including the failed ones) must have been released:
    // a full window's worth of new ids is accepted and drains clean.
    std::vector<std::uint32_t> refill(128);
    for (std::uint32_t i = 0; i < 128; ++i) refill[i] = 1000 + 2 * i;
    EXPECT_EQ(pipeline.prefetch(refill), 128U);
    pipeline.drain();
}

TEST(PrefetchConcurrency, ConcurrentDrainRethrowsUnclaimedFailure) {
    core::PrefetchPipeline::Config pc;
    pc.threads = 2;
    pc.max_in_flight = 8;
    core::PrefetchPipeline pipeline{
        [](std::uint32_t) { return false; },
        [](std::uint32_t id) {
            if (id == 3) throw std::runtime_error{"lost sample"};
        },
        pc};

    std::vector<std::uint32_t> ids{1, 2, 3, 4};
    EXPECT_EQ(pipeline.prefetch(ids), 4U);
    // Nobody consumes id 3: its failure must surface at the drain barrier
    // instead of passing silently.
    EXPECT_THROW(pipeline.drain(), std::runtime_error);
    // The failure was claimed by the throw; the next drain is clean and
    // the window slot was not leaked.
    pipeline.drain();
    EXPECT_EQ(pipeline.discard_ready(), 3U);
    std::vector<std::uint32_t> refill{10, 11, 12, 13, 14, 15, 16, 17};
    EXPECT_EQ(pipeline.prefetch(refill), 8U);
    pipeline.drain();
}

TEST(PrefetchConcurrency, ConcurrentReissueSupersedesStaleFailure) {
    std::atomic<bool> failing{true};
    core::PrefetchPipeline::Config pc;
    pc.threads = 1;
    pc.max_in_flight = 8;
    core::PrefetchPipeline pipeline{
        [](std::uint32_t) { return false; },
        [&failing](std::uint32_t) {
            if (failing.load(std::memory_order_relaxed)) {
                throw std::runtime_error{"transient"};
            }
        },
        pc};

    std::vector<std::uint32_t> ids{7};
    EXPECT_EQ(pipeline.prefetch(ids), 1U);
    while (pipeline.stats().failed == 0) std::this_thread::yield();

    // The backend recovers and the id is re-issued: the stale failure must
    // not shadow the successful retry.
    failing.store(false, std::memory_order_relaxed);
    EXPECT_EQ(pipeline.prefetch(ids), 1U);
    EXPECT_TRUE(pipeline.consume(7));
    pipeline.drain();
}

TEST(PrefetchConcurrency, ConcurrentDiscardReadyFreesWindowSlots) {
    core::PrefetchPipeline::Config pc;
    pc.threads = 1;
    pc.max_in_flight = 8;
    core::PrefetchPipeline pipeline{[](std::uint32_t) { return false; },
                                    [](std::uint32_t) {}, pc};

    std::vector<std::uint32_t> first{1, 2, 3, 4, 5, 6, 7, 8};
    EXPECT_EQ(pipeline.prefetch(first), 8U);
    pipeline.drain();
    // Window full of completed-but-unconsumed entries: new ids are dropped.
    std::vector<std::uint32_t> second{11, 12};
    EXPECT_EQ(pipeline.prefetch(second), 0U);
    EXPECT_EQ(pipeline.discard_ready(), 8U);
    EXPECT_EQ(pipeline.prefetch(second), 2U);
    pipeline.drain();
}

// --------------------------------------------------- RemoteStore fetch slots

TEST(RemoteStoreConcurrency, ConcurrentFetchesRespectSlotCap) {
    data::DatasetSpec spec;
    spec.name = "slots";
    spec.num_samples = 256;
    spec.num_classes = 4;
    spec.feature_dim = 8;
    data::SyntheticDataset dataset{spec};
    storage::RemoteStore store{dataset, {}};
    constexpr std::size_t kCap = 3;
    store.set_fetch_slot_cap(kCap);

    std::vector<std::thread> fetchers;
    for (int t = 0; t < 8; ++t) {
        fetchers.emplace_back([&store, t] {
            for (std::uint32_t i = 0; i < 200; ++i) {
                (void)store.fetch((static_cast<std::uint32_t>(t) * 200 + i) %
                                  256);
            }
        });
    }
    for (auto& f : fetchers) f.join();

    EXPECT_EQ(store.total_fetches(), 8U * 200U);
    EXPECT_LE(store.peak_in_flight(), kCap);
    store.set_fetch_slot_cap(0);  // uncapped mode still works afterwards
    (void)store.fetch(0);
    EXPECT_EQ(store.total_fetches(), 8U * 200U + 1U);
}

// Regression: lowering the cap — and in particular dropping it to 0
// (uncapped) — while fetchers are parked on the slot gate must wake every
// waiter. The old wait predicate ignored cap changes, so a thread blocked
// under cap=1 stayed blocked forever once the cap was lifted.
TEST(RemoteStoreConcurrency, ConcurrentCapChurnNeverStrandsWaiters) {
    data::DatasetSpec spec;
    spec.name = "slots-churn";
    spec.num_samples = 256;
    spec.num_classes = 4;
    spec.feature_dim = 8;
    data::SyntheticDataset dataset{spec};
    storage::RemoteStore store{dataset, {}};
    store.set_fetch_slot_cap(1);  // maximal contention from the start

    constexpr std::size_t kThreads = 8;
    constexpr std::uint32_t kPerThread = 400;
    std::atomic<bool> go{false};
    std::vector<std::thread> fetchers;
    for (std::size_t t = 0; t < kThreads; ++t) {
        fetchers.emplace_back([&store, &go, t] {
            while (!go.load(std::memory_order_acquire)) {
                std::this_thread::yield();
            }
            for (std::uint32_t i = 0; i < kPerThread; ++i) {
                (void)store.fetch(
                    (static_cast<std::uint32_t>(t) * kPerThread + i) % 256);
            }
        });
    }
    // Churn the cap through raises, lowers, and full removal while the
    // fetchers hammer the gate. Every transition must wake the parked
    // threads or the joins below deadlock.
    go.store(true, std::memory_order_release);
    constexpr std::size_t kCaps[] = {1, 3, 0, 2, 1, 0, 4, 1};
    for (int round = 0; round < 50; ++round) {
        store.set_fetch_slot_cap(kCaps[static_cast<std::size_t>(round) % 8]);
        std::this_thread::yield();
    }
    store.set_fetch_slot_cap(0);  // finish uncapped: all waiters released
    for (auto& f : fetchers) f.join();

    EXPECT_EQ(store.total_fetches(), kThreads * kPerThread);
}

}  // namespace
}  // namespace spider
