// Shard-parity suite for the TwoLayerSemanticCache (DESIGN.md §8).
//
// Part 1 — legacy parity: a `shards = 1` cache must reproduce the original
// unsharded implementation *exactly* — same Lookup kinds and served ids,
// same AdmitResults (admitted flag and evicted victim), same homophily
// evictions, same section sizes — over a long randomized op sequence that
// interleaves lookups, miss admissions, homophily updates, and elastic
// repartitions. The reference model below is a line-for-line transcription
// of the pre-sharding TwoLayerSemanticCache built from the same section
// primitives, plus the section-exclusivity rule (paper §4.2: an id resident
// in one section is never admitted to the other) that both models enforce.
//
// Part 2 — sharded invariants: for S > 1 the per-op interleaving is
// intentionally different (per-shard admission minima), so the contract is
// structural instead: capacity is partitioned exactly, each shard respects
// its own slices, Case 2/4 admission compares against the *shard* minimum,
// and cross-shard surrogate lookups resolve through the external
// neighbor index.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <optional>
#include <span>
#include <vector>

#include "cache/homophily_cache.hpp"
#include "cache/importance_cache.hpp"
#include "cache/semantic_cache.hpp"
#include "util/rng.hpp"

namespace spider::cache {
namespace {

// ------------------------------------------------------------------------
// Reference model: the pre-sharding TwoLayerSemanticCache, verbatim.

class LegacyTwoLayer {
public:
    LegacyTwoLayer(std::size_t total_capacity, double imp_ratio)
        : total_capacity_{total_capacity},
          importance_{imp_items(imp_ratio)},
          homophily_{total_capacity - imp_items(imp_ratio)} {}

    [[nodiscard]] Lookup lookup(std::uint32_t id) const {
        if (importance_.contains(id)) return {HitKind::kImportance, id};
        if (homophily_.contains_key(id)) return {HitKind::kHomophily, id};
        if (const auto surrogate = homophily_.surrogate_for(id)) {
            return {HitKind::kHomophily, *surrogate};
        }
        return {HitKind::kMiss, id};
    }

    ImportanceCache::AdmitResult on_miss_fetched(std::uint32_t id,
                                                 double score) {
        if (homophily_.contains_key(id)) return {};  // section exclusivity
        return importance_.admit_scored(id, score);
    }

    std::optional<std::uint32_t> update_homophily(
        std::uint32_t key, std::span<const std::uint32_t> neighbors) {
        if (importance_.contains(key)) return std::nullopt;  // exclusivity
        return homophily_.update(key, neighbors);
    }

    void set_imp_ratio(double imp_ratio) {
        imp_ratio = std::clamp(imp_ratio, 0.01, 1.0);
        const std::size_t imp = imp_items(imp_ratio);
        importance_.set_capacity(imp);
        homophily_.set_capacity(total_capacity_ - imp);
    }

    [[nodiscard]] std::size_t importance_size() const {
        return importance_.size();
    }
    [[nodiscard]] std::size_t homophily_size() const {
        return homophily_.size();
    }

private:
    [[nodiscard]] std::size_t imp_items(double ratio) const {
        const auto items = static_cast<std::size_t>(std::llround(
            static_cast<double>(total_capacity_) * ratio));
        return std::min(items, total_capacity_);
    }

    std::size_t total_capacity_;
    ImportanceCache importance_;
    HomophilyCache homophily_;
};

// ------------------------------------------------------------------------
// Part 1: shards = 1 vs legacy, op-for-op.

TEST(ShardParity, SingleShardMatchesLegacyTraceExactly) {
    constexpr std::size_t kCapacity = 64;
    constexpr double kRatio = 0.7;
    constexpr std::uint32_t kIdSpace = 500;
    constexpr int kOps = 20000;

    LegacyTwoLayer legacy{kCapacity, kRatio};
    TwoLayerSemanticCache sharded{kCapacity, kRatio, /*shards=*/1};
    ASSERT_EQ(sharded.num_shards(), 1U);

    util::Rng rng{0xBEEFULL};
    const double ratios[] = {0.3, 0.5, 0.7, 0.9};
    for (int op = 0; op < kOps; ++op) {
        const auto id =
            static_cast<std::uint32_t>(rng.uniform_index(kIdSpace));
        const double roll = rng.uniform();
        if (roll < 0.55) {
            const Lookup a = legacy.lookup(id);
            const Lookup b = sharded.lookup(id);
            ASSERT_EQ(a.kind, b.kind) << "op " << op << " id " << id;
            ASSERT_EQ(a.served_id, b.served_id) << "op " << op;
        } else if (roll < 0.85) {
            const double score = rng.uniform();
            const auto a = legacy.on_miss_fetched(id, score);
            const auto b = sharded.on_miss_fetched(id, score);
            ASSERT_EQ(a.admitted, b.admitted) << "op " << op << " id " << id;
            ASSERT_EQ(a.evicted, b.evicted) << "op " << op;
        } else if (roll < 0.98) {
            std::vector<std::uint32_t> neighbors;
            const int fanout = static_cast<int>(1 + rng.uniform_index(6));
            for (int k = 0; k < fanout; ++k) {
                neighbors.push_back(static_cast<std::uint32_t>(
                    rng.uniform_index(kIdSpace)));
            }
            const auto a = legacy.update_homophily(id, neighbors);
            const auto b = sharded.update_homophily(id, neighbors);
            ASSERT_EQ(a, b) << "op " << op << " key " << id;
        } else {
            const double ratio = ratios[rng.uniform_index(4)];
            legacy.set_imp_ratio(ratio);
            sharded.set_imp_ratio(ratio);
        }
        ASSERT_EQ(legacy.importance_size(), sharded.importance_size())
            << "op " << op;
        ASSERT_EQ(legacy.homophily_size(), sharded.homophily_size())
            << "op " << op;
    }
}

// ------------------------------------------------------------------------
// Seqlock parity (DESIGN.md §8.4): with lock-free reads on, lookup/probe
// must return the exact Case 1/3/miss sequence the locked path produces.
// Single-threaded, so the residency view is always quiescent — any
// divergence is a writer that failed to publish a mutation to the view.

class SeqlockParity : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SeqlockParity, LocklessLookupMatchesLockedTraceExactly) {
    const std::size_t shards = GetParam();
    constexpr std::size_t kCapacity = 64;
    constexpr double kRatio = 0.7;
    constexpr std::uint32_t kIdSpace = 500;
    constexpr int kOps = 20000;

    TwoLayerSemanticCache lockfree{kCapacity, kRatio, shards,
                                   /*lockfree_reads=*/true};
    TwoLayerSemanticCache locked{kCapacity, kRatio, shards,
                                 /*lockfree_reads=*/false};
    ASSERT_TRUE(lockfree.lockfree_reads());
    ASSERT_FALSE(locked.lockfree_reads());

    util::Rng rng{0xBEEFULL};
    const double ratios[] = {0.3, 0.5, 0.7, 0.9};
    for (int op = 0; op < kOps; ++op) {
        const auto id =
            static_cast<std::uint32_t>(rng.uniform_index(kIdSpace));
        const double roll = rng.uniform();
        if (roll < 0.55) {
            const Lookup a = locked.lookup(id);
            const Lookup b = lockfree.lookup(id);
            ASSERT_EQ(a.kind, b.kind) << "op " << op << " id " << id;
            ASSERT_EQ(a.served_id, b.served_id) << "op " << op;
            ASSERT_EQ(locked.probe(id), lockfree.probe(id)) << "op " << op;
        } else if (roll < 0.85) {
            const double score = rng.uniform();
            const auto a = locked.on_miss_fetched(id, score);
            const auto b = lockfree.on_miss_fetched(id, score);
            ASSERT_EQ(a.admitted, b.admitted) << "op " << op << " id " << id;
            ASSERT_EQ(a.evicted, b.evicted) << "op " << op;
        } else if (roll < 0.93) {
            std::vector<std::uint32_t> neighbors;
            const int fanout = static_cast<int>(1 + rng.uniform_index(6));
            for (int k = 0; k < fanout; ++k) {
                neighbors.push_back(static_cast<std::uint32_t>(
                    rng.uniform_index(kIdSpace)));
            }
            const auto a = locked.update_homophily(id, neighbors);
            const auto b = lockfree.update_homophily(id, neighbors);
            ASSERT_EQ(a, b) << "op " << op << " key " << id;
        } else if (roll < 0.98) {
            // Score churn: exercises the wait-free no-op pre-check.
            const double score = rng.uniform();
            locked.update_importance_score(id, score);
            lockfree.update_importance_score(id, score);
        } else {
            const double ratio = ratios[rng.uniform_index(4)];
            locked.set_imp_ratio(ratio);
            lockfree.set_imp_ratio(ratio);
        }
        ASSERT_EQ(locked.importance_size(), lockfree.importance_size())
            << "op " << op;
        ASSERT_EQ(locked.homophily_size(), lockfree.homophily_size())
            << "op " << op;
    }
}

INSTANTIATE_TEST_SUITE_P(ShardCounts, SeqlockParity,
                         ::testing::Values(1, 4));

TEST(ShardParity, SingleShardLegacyAccessorsStillWork) {
    TwoLayerSemanticCache cache{10, 0.5};
    cache.importance().admit_scored(1, 0.9);
    EXPECT_TRUE(cache.importance().contains(1));
    EXPECT_EQ(cache.lookup(1).kind, HitKind::kImportance);
}

// ------------------------------------------------------------------------
// Part 2: sharded structural invariants.

class ShardedInvariants : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ShardedInvariants, CapacityIsPartitionedExactly) {
    const std::size_t shards = GetParam();
    constexpr std::size_t kCapacity = 103;  // prime: exercises remainders
    TwoLayerSemanticCache cache{kCapacity, 0.6, shards};
    ASSERT_EQ(cache.num_shards(), shards);

    std::size_t total = 0;
    for (std::size_t s = 0; s < shards; ++s) {
        const std::size_t cap = cache.shard_capacity(s);
        EXPECT_EQ(cache.shard_importance_capacity(s) +
                      cache.shard_homophily_capacity(s),
                  cap)
            << "shard " << s;
        total += cap;
    }
    EXPECT_EQ(total, kCapacity);
    EXPECT_EQ(cache.importance_capacity() + cache.homophily_capacity(),
              kCapacity);
}

TEST_P(ShardedInvariants, SizesNeverExceedPerShardSlices) {
    const std::size_t shards = GetParam();
    TwoLayerSemanticCache cache{96, 0.5, shards};
    util::Rng rng{7ULL};
    for (int op = 0; op < 5000; ++op) {
        const auto id = static_cast<std::uint32_t>(rng.uniform_index(800));
        cache.on_miss_fetched(id, rng.uniform());
        if (op % 7 == 0) {
            const std::uint32_t nb[] = {id ^ 0x55U, id + 13};
            cache.update_homophily(id, nb);
        }
        if (op % 911 == 0) cache.set_imp_ratio(op % 2 == 0 ? 0.3 : 0.8);
    }
    for (std::size_t s = 0; s < shards; ++s) {
        EXPECT_LE(cache.shard_importance_size(s),
                  cache.shard_importance_capacity(s))
            << "shard " << s;
        EXPECT_LE(cache.shard_homophily_size(s),
                  cache.shard_homophily_capacity(s))
            << "shard " << s;
    }
}

TEST_P(ShardedInvariants, AdmissionComparesAgainstShardMinimum) {
    const std::size_t shards = GetParam();
    // Large capacity so every shard's importance slice is non-trivial.
    TwoLayerSemanticCache cache{shards * 8, 1.0, shards};

    // Fill every shard to capacity with mid-range scores.
    for (std::uint32_t id = 0; id < 100000 &&
                               cache.importance_size() <
                                   cache.importance_capacity();
         ++id) {
        cache.on_miss_fetched(id, 0.5);
    }
    ASSERT_EQ(cache.importance_size(), cache.importance_capacity());

    for (std::size_t s = 0; s < shards; ++s) {
        const auto min = cache.shard_min_score(s);
        ASSERT_TRUE(min.has_value()) << "shard " << s;
        // Find a fresh id hashing to this shard.
        std::uint32_t probe = 200000;
        while (cache.shard_of(probe) != s ||
               cache.lookup(probe).kind != HitKind::kMiss) {
            ++probe;
        }
        // Case 2: at-or-below the shard minimum — rejected.
        const auto reject = cache.on_miss_fetched(probe, *min - 0.1);
        EXPECT_FALSE(reject.admitted) << "shard " << s;
        // Case 4: above the shard minimum — admitted, shard stays full.
        const auto admit = cache.on_miss_fetched(probe, *min + 0.1);
        EXPECT_TRUE(admit.admitted) << "shard " << s;
        ASSERT_TRUE(admit.evicted.has_value()) << "shard " << s;
        EXPECT_EQ(cache.shard_of(*admit.evicted), s)
            << "victim must come from the same shard";
        EXPECT_EQ(cache.shard_importance_size(s),
                  cache.shard_importance_capacity(s));
    }
}

TEST_P(ShardedInvariants, SurrogateLookupCrossesShardBoundaries) {
    const std::size_t shards = GetParam();
    if (shards < 2) GTEST_SKIP() << "needs at least two shards";
    TwoLayerSemanticCache cache{64, 0.2, shards};

    // Pick a key and a neighbor guaranteed to live on different shards.
    const std::uint32_t key = 1;
    std::uint32_t neighbor = 2;
    while (cache.shard_of(neighbor) == cache.shard_of(key)) ++neighbor;

    const std::uint32_t nb[] = {neighbor};
    cache.update_homophily(key, nb);
    ASSERT_EQ(cache.homophily_size(), 1U);

    // The high-degree key serves itself...
    EXPECT_EQ(cache.lookup(key).kind, HitKind::kHomophily);
    EXPECT_EQ(cache.lookup(key).served_id, key);
    // ...and its neighbor on the *other* shard resolves to it (Case 3).
    const Lookup via = cache.lookup(neighbor);
    EXPECT_EQ(via.kind, HitKind::kHomophily);
    EXPECT_EQ(via.served_id, key);
}

TEST_P(ShardedInvariants, EvictedHomophilyKeyStopsServingSurrogates) {
    const std::size_t shards = GetParam();
    if (shards < 2) GTEST_SKIP() << "needs at least two shards";
    // Tiny homophily slices force FIFO evictions fast.
    TwoLayerSemanticCache cache{2 * shards, 0.5, shards};

    util::Rng rng{11ULL};
    std::vector<std::pair<std::uint32_t, std::uint32_t>> inserted;
    for (std::uint32_t key = 0; key < 64; ++key) {
        const std::uint32_t neighbor = 1000 + key;
        const std::uint32_t nb[] = {neighbor};
        cache.update_homophily(key, nb);
        inserted.emplace_back(key, neighbor);
    }
    // Every surrogate the cache still serves must name a *resident* key.
    for (const auto& [key, neighbor] : inserted) {
        const Lookup via = cache.lookup(neighbor);
        if (via.kind == HitKind::kMiss) continue;
        EXPECT_EQ(via.kind, HitKind::kHomophily);
        const Lookup direct = cache.lookup(via.served_id);
        EXPECT_EQ(direct.kind, HitKind::kHomophily)
            << "surrogate " << via.served_id << " is not resident";
        EXPECT_EQ(direct.served_id, via.served_id);
    }
}

TEST_P(ShardedInvariants, ElasticRepartitionPreservesTotalCapacity) {
    const std::size_t shards = GetParam();
    TwoLayerSemanticCache cache{80, 0.7, shards};
    util::Rng rng{3ULL};
    for (int i = 0; i < 2000; ++i) {
        cache.on_miss_fetched(static_cast<std::uint32_t>(i % 640),
                              rng.uniform());
    }
    for (const double ratio : {0.1, 0.9, 0.33, 1.0, 0.5}) {
        cache.set_imp_ratio(ratio);
        EXPECT_EQ(cache.importance_capacity() + cache.homophily_capacity(),
                  cache.total_capacity());
        EXPECT_LE(cache.importance_size(), cache.importance_capacity());
        EXPECT_LE(cache.homophily_size(), cache.homophily_capacity());
    }
}

INSTANTIATE_TEST_SUITE_P(ShardCounts, ShardedInvariants,
                         ::testing::Values(2, 4, 7, 16));

TEST(ShardParity, ShardedAccessorsThrowOnDirectSectionAccess) {
    TwoLayerSemanticCache cache{32, 0.5, 4};
    EXPECT_THROW((void)cache.importance(), std::logic_error);
    EXPECT_THROW((void)cache.homophily(), std::logic_error);
}

TEST(ShardParity, AutoShardsIsBoundedAndPositive) {
    const std::size_t s = TwoLayerSemanticCache::auto_shards();
    EXPECT_GE(s, 1U);
    EXPECT_LE(s, 16U);
    TwoLayerSemanticCache cache{64, 0.5, TwoLayerSemanticCache::kAutoShards};
    EXPECT_EQ(cache.num_shards(), s);
}

}  // namespace
}  // namespace spider::cache
