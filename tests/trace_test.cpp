// Trace subsystem tests: recording/statistics, text round-trip
// serialization, replay against policies, and the Mattson reuse-distance
// profile — including the analytic property behind the paper's Figure 3(b):
// under full-epoch permutation access, every reuse distance equals the
// dataset size, so LRU hits nothing at any practical capacity.

#include <gtest/gtest.h>

#include <numeric>
#include <sstream>

#include "cache/basic_policies.hpp"
#include "data/presets.hpp"
#include "sim/simulator.hpp"
#include "trace/replay.hpp"
#include "trace/reuse_distance.hpp"
#include "trace/trace.hpp"
#include "util/rng.hpp"

namespace spider::trace {
namespace {

TEST(AccessTrace, RecordAndStats) {
    AccessTrace trace;
    trace.record(0, 1, 1, Outcome::kMiss);
    trace.record(0, 2, 2, Outcome::kImportanceHit);
    trace.record(1, 1, 9, Outcome::kHomophilyHit);
    trace.record(1, 3, 3, Outcome::kMiss);

    EXPECT_EQ(trace.size(), 4U);
    EXPECT_EQ(trace.epoch_count(), 2U);
    EXPECT_EQ(trace.unique_samples(), 3U);
    EXPECT_DOUBLE_EQ(trace.hit_ratio(), 0.5);
    EXPECT_DOUBLE_EQ(trace.epoch_hit_ratio(0), 0.5);
    EXPECT_DOUBLE_EQ(trace.epoch_hit_ratio(1), 0.5);
    EXPECT_DOUBLE_EQ(trace.epoch_hit_ratio(7), 0.0);
    EXPECT_EQ(trace[2].served, 9U);
    EXPECT_TRUE(trace[2].is_hit());
    EXPECT_FALSE(trace[0].is_hit());
}

TEST(AccessTrace, EmptyTraceBehaviour) {
    const AccessTrace trace;
    EXPECT_TRUE(trace.empty());
    EXPECT_EQ(trace.epoch_count(), 0U);
    EXPECT_DOUBLE_EQ(trace.hit_ratio(), 0.0);
}

TEST(AccessTrace, SaveLoadRoundTrip) {
    AccessTrace trace;
    trace.record(0, 10, 10, Outcome::kMiss);
    trace.record(1, 11, 42, Outcome::kSubstitution);
    trace.record(2, 12, 12, Outcome::kPolicyHit);
    trace.record(3, 13, 7, Outcome::kHomophilyHit);
    trace.record(4, 14, 14, Outcome::kImportanceHit);

    std::stringstream buffer;
    trace.save(buffer);
    const AccessTrace loaded = AccessTrace::load(buffer);
    ASSERT_EQ(loaded.size(), trace.size());
    for (std::size_t i = 0; i < trace.size(); ++i) {
        EXPECT_EQ(loaded[i], trace[i]) << "record " << i;
    }
}

TEST(AccessTrace, LoadRejectsGarbage) {
    std::stringstream no_header{"0 1 1 miss\n"};
    EXPECT_THROW(AccessTrace::load(no_header), std::invalid_argument);

    std::stringstream bad_outcome{
        "# spidercache-trace v1\n0 1 1 banana\n"};
    EXPECT_THROW(AccessTrace::load(bad_outcome), std::invalid_argument);

    std::stringstream truncated{"# spidercache-trace v1\n0 1\n"};
    EXPECT_THROW(AccessTrace::load(truncated), std::invalid_argument);
}

TEST(OutcomeNames, Stable) {
    EXPECT_STREQ(to_string(Outcome::kMiss), "miss");
    EXPECT_STREQ(to_string(Outcome::kImportanceHit), "imp");
    EXPECT_STREQ(to_string(Outcome::kHomophilyHit), "homo");
    EXPECT_STREQ(to_string(Outcome::kPolicyHit), "hit");
    EXPECT_STREQ(to_string(Outcome::kSubstitution), "subst");
}

// ------------------------------------------------------------------ replay

TEST(Replay, SkewedStreamFavorsLru) {
    // 90% of accesses to 10 hot ids, 10% to 1000 cold ids: LRU with a
    // small cache should capture most of the hot traffic.
    util::Rng rng{3};
    std::vector<std::uint32_t> stream;
    for (int i = 0; i < 20000; ++i) {
        stream.push_back(rng.uniform() < 0.9
                             ? static_cast<std::uint32_t>(rng.uniform_index(10))
                             : static_cast<std::uint32_t>(
                                   10 + rng.uniform_index(1000)));
    }
    cache::LruCache lru{50};
    const ReplayResult result = replay(stream, lru);
    EXPECT_EQ(result.accesses, 20000U);
    EXPECT_GT(result.hit_ratio(), 0.80);
    EXPECT_GT(result.warm_hit_ratio(), result.hit_ratio());
    EXPECT_EQ(result.policy, "LRU");
}

TEST(Replay, PermutationStreamDefeatsLru) {
    // The paper's Fig. 3(b) pathology: per-epoch permutations.
    util::Rng rng{5};
    std::vector<std::uint32_t> stream;
    std::vector<std::uint32_t> epoch(1000);
    std::iota(epoch.begin(), epoch.end(), 0U);
    for (int e = 0; e < 5; ++e) {
        rng.shuffle(epoch);
        stream.insert(stream.end(), epoch.begin(), epoch.end());
    }
    cache::LruCache lru{200};  // 20% of the dataset
    const ReplayResult result = replay(stream, lru);
    EXPECT_LT(result.hit_ratio(), 0.10);
}

TEST(Replay, EpochBreakdownFromTrace) {
    AccessTrace trace;
    for (std::uint32_t e = 0; e < 3; ++e) {
        for (std::uint32_t id = 0; id < 50; ++id) {
            trace.record(e, id, id, Outcome::kMiss);
        }
    }
    cache::StaticCache minio{25};
    const ReplayResult result = replay(trace, minio);
    ASSERT_EQ(result.epoch_hit_ratio.size(), 3U);
    EXPECT_DOUBLE_EQ(result.epoch_hit_ratio[0], 0.0);  // filling
    EXPECT_DOUBLE_EQ(result.epoch_hit_ratio[1], 0.5);  // 25/50 resident
    EXPECT_DOUBLE_EQ(result.epoch_hit_ratio[2], 0.5);
}

// ---------------------------------------------------------- reuse distance

TEST(ReuseDistance, KnownSmallStream) {
    // Stream: a b a c b a
    //   a@2: distance 1 (b) ; b@4: distance 2 (a, c) ; a@5: distance 2 (c, b)
    const std::vector<std::uint32_t> stream = {0, 1, 0, 2, 1, 0};
    const ReuseProfile profile = compute_reuse_profile(stream);
    EXPECT_EQ(profile.total_accesses, 6U);
    EXPECT_EQ(profile.cold_misses, 3U);
    EXPECT_EQ(profile.histogram[1], 1U);
    EXPECT_EQ(profile.histogram[2], 2U);
    EXPECT_DOUBLE_EQ(profile.mean_reuse_distance(), (1.0 + 2.0 + 2.0) / 3.0);
}

TEST(ReuseDistance, LruHitRatioMatchesDirectSimulation) {
    // Ground truth: replaying through a real LRU cache must match the
    // profile-derived curve exactly (stack inclusion property).
    util::Rng rng{7};
    std::vector<std::uint32_t> stream;
    for (int i = 0; i < 5000; ++i) {
        // Zipf-ish mixture.
        stream.push_back(rng.uniform() < 0.7
                             ? static_cast<std::uint32_t>(rng.uniform_index(20))
                             : static_cast<std::uint32_t>(
                                   rng.uniform_index(500)));
    }
    const ReuseProfile profile = compute_reuse_profile(stream);
    for (const std::size_t capacity : {5UL, 20UL, 100UL, 400UL}) {
        cache::LruCache lru{capacity};
        const ReplayResult simulated = replay(stream, lru);
        EXPECT_NEAR(profile.lru_hit_ratio(capacity), simulated.hit_ratio(),
                    1e-12)
            << "capacity " << capacity;
    }
}

TEST(ReuseDistance, PermutationAccessHasDatasetSizedDistances) {
    // Every item touched once per epoch -> every finite reuse distance is
    // exactly N-1 distinct items = the Fig. 3(b) pathology.
    const std::size_t n = 300;
    std::vector<std::uint32_t> stream;
    util::Rng rng{9};
    std::vector<std::uint32_t> epoch(n);
    std::iota(epoch.begin(), epoch.end(), 0U);
    for (int e = 0; e < 4; ++e) {
        rng.shuffle(epoch);
        stream.insert(stream.end(), epoch.begin(), epoch.end());
    }
    const ReuseProfile profile = compute_reuse_profile(stream);
    // LRU below dataset size hits ~nothing; at full size it hits all warm
    // accesses.
    EXPECT_LT(profile.lru_hit_ratio(n / 2), 0.30);
    EXPECT_NEAR(profile.lru_hit_ratio(n),
                static_cast<double>(stream.size() - n) /
                    static_cast<double>(stream.size()),
                1e-12);
}

TEST(ReuseDistance, CurveIsMonotone) {
    util::Rng rng{11};
    std::vector<std::uint32_t> stream;
    for (int i = 0; i < 3000; ++i) {
        stream.push_back(static_cast<std::uint32_t>(rng.uniform_index(200)));
    }
    const ReuseProfile profile = compute_reuse_profile(stream);
    const std::vector<std::size_t> capacities = {1, 2, 5, 10, 50, 100, 200};
    const std::vector<double> curve = profile.hit_ratio_curve(capacities);
    for (std::size_t i = 1; i < curve.size(); ++i) {
        EXPECT_GE(curve[i], curve[i - 1]);
    }
}

TEST(ReuseDistance, EmptyStream) {
    const ReuseProfile profile = compute_reuse_profile({});
    EXPECT_EQ(profile.total_accesses, 0U);
    EXPECT_DOUBLE_EQ(profile.lru_hit_ratio(100), 0.0);
    EXPECT_DOUBLE_EQ(profile.mean_reuse_distance(), 0.0);
}

// ------------------------------------------------ simulator trace capture

TEST(SimulatorTrace, RecordedTraceMatchesMetrics) {
    sim::SimConfig config;
    config.dataset = data::cifar10_like(0.01, 31);
    config.strategy = sim::StrategyKind::kSpider;
    config.epochs = 4;
    config.record_trace = true;
    config.seed = 13;
    const metrics::RunResult run = sim::TrainingSimulator{config}.run();

    std::uint64_t metric_accesses = 0;
    std::uint64_t metric_hits = 0;
    for (const auto& epoch : run.epochs) {
        metric_accesses += epoch.accesses;
        metric_hits += epoch.hits;
    }
    EXPECT_EQ(run.access_trace.size(), metric_accesses);
    EXPECT_NEAR(run.access_trace.hit_ratio(),
                static_cast<double>(metric_hits) /
                    static_cast<double>(metric_accesses),
                1e-12);
    EXPECT_EQ(run.access_trace.epoch_count(), 4U);

    // Homophily hits in the trace carry a different served id or mark the
    // outcome; substitutions never appear for SpiderCache.
    for (const Record& r : run.access_trace.records()) {
        EXPECT_NE(r.outcome, Outcome::kSubstitution);
        if (r.outcome != Outcome::kHomophilyHit) {
            EXPECT_EQ(r.requested, r.served);
        }
    }
}

TEST(SimulatorTrace, DisabledByDefault) {
    sim::SimConfig config;
    config.dataset = data::cifar10_like(0.01, 31);
    config.epochs = 2;
    const metrics::RunResult run = sim::TrainingSimulator{config}.run();
    EXPECT_TRUE(run.access_trace.empty());
}

}  // namespace
}  // namespace spider::trace
