// Cache-service tests: wire-protocol round trips, frame reassembly over
// arbitrary read() chunkings, malformed/truncated-frame fuzz, oversized
// frame rejection, live-server op coverage, pipelining + server-side
// batching, clean disconnect mid-pipeline (no leaked in-flight batch
// slots), and the simulator running against a served cache.

#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <functional>
#include <random>
#include <thread>
#include <vector>

#include "data/presets.hpp"
#include "server/client.hpp"
#include "server/protocol.hpp"
#include "server/server.hpp"
#include "sim/simulator.hpp"
#include "storage/ssd_tier.hpp"

namespace spider::server {
namespace {

using namespace std::chrono_literals;

// ---- raw-socket helpers (tests that bypass Client's framing on purpose).

void write_raw(int fd, std::span<const std::uint8_t> bytes) {
    std::size_t off = 0;
    while (off < bytes.size()) {
        const ssize_t n = ::write(fd, bytes.data() + off, bytes.size() - off);
        if (n < 0 && errno == EINTR) continue;
        ASSERT_GT(n, 0) << "raw write failed: " << std::strerror(errno);
        off += static_cast<std::size_t>(n);
    }
}

/// Reads until `n` bytes or EOF; returns bytes actually read.
std::vector<std::uint8_t> read_upto(int fd, std::size_t n) {
    std::vector<std::uint8_t> out;
    out.reserve(n);
    while (out.size() < n) {
        std::uint8_t buf[4096];
        const ssize_t got =
            ::read(fd, buf, std::min(sizeof buf, n - out.size()));
        if (got < 0 && errno == EINTR) continue;
        if (got <= 0) break;
        out.insert(out.end(), buf, buf + got);
    }
    return out;
}

bool eventually(const std::function<bool()>& pred,
                std::chrono::milliseconds budget = 3000ms) {
    const auto deadline = std::chrono::steady_clock::now() + budget;
    while (std::chrono::steady_clock::now() < deadline) {
        if (pred()) return true;
        std::this_thread::sleep_for(2ms);
    }
    return pred();
}

// ======================================================= protocol encoding

TEST(Protocol, GetRequestRoundTrip) {
    std::vector<std::uint8_t> buf;
    WireWriter w{buf};
    encode_get(w, /*tenant=*/3, /*id=*/0xDEADBEEF, /*score=*/2.5);

    FrameDecoder decoder;
    decoder.feed(buf);
    Frame frame;
    ASSERT_EQ(decoder.next(frame), FrameDecoder::Result::kFrame);
    EXPECT_EQ(static_cast<Op>(frame.b0), Op::kGet);
    EXPECT_EQ(frame.b1, 3);

    WireReader r{frame.payload};
    EXPECT_EQ(r.u32(), 0xDEADBEEFu);
    EXPECT_DOUBLE_EQ(r.f64(), 2.5);
    EXPECT_TRUE(r.done());
    EXPECT_EQ(decoder.next(frame), FrameDecoder::Result::kNeedMore);
}

TEST(Protocol, EveryRequestOpFramesCleanly) {
    std::vector<std::uint8_t> buf;
    WireWriter w{buf};
    const std::vector<std::uint32_t> ids{1, 2, 3};
    const std::vector<double> scores{0.1, 0.2, 0.3};
    encode_get(w, 0, 7, 1.0);
    encode_probe(w, 1, 8);
    encode_mget(w, 2, ids, scores);
    encode_put_score(w, 0, 9, 4.0);
    encode_stats(w);
    encode_tenant_stat(w, 1);
    encode_tenant_set_ratio(w, 0, 0.75);
    encode_put_neighbors(w, 0, 10, ids);
    encode_ping(w);
    encode_get_data(w, 0, 11, 2.0);

    const Op expected[] = {Op::kGet,        Op::kProbe,
                           Op::kMget,       Op::kPutScore,
                           Op::kStats,      Op::kTenantStat,
                           Op::kTenantSetRatio, Op::kPutNeighbors,
                           Op::kPing,       Op::kGetData};
    FrameDecoder decoder;
    decoder.feed(buf);
    EXPECT_EQ(decoder.buffered_frames(), std::size(expected));
    Frame frame;
    for (const Op op : expected) {
        ASSERT_EQ(decoder.next(frame), FrameDecoder::Result::kFrame);
        EXPECT_EQ(static_cast<Op>(frame.b0), op) << to_string(op);
    }
    EXPECT_EQ(decoder.next(frame), FrameDecoder::Result::kNeedMore);
    EXPECT_EQ(decoder.buffered_bytes(), 0U);
}

TEST(Protocol, ReplyRoundTrips) {
    {
        std::vector<std::uint8_t> buf;
        WireWriter w{buf};
        encode_get_reply(w, {ServeKind::kHomophilyHit, 42});
        const auto reply = decode_get_reply(buf);
        ASSERT_TRUE(reply.has_value());
        EXPECT_EQ(reply->kind, ServeKind::kHomophilyHit);
        EXPECT_EQ(reply->served_id, 42U);
    }
    {
        StatsReply in;
        in.conns_accepted = 11;
        in.frames = 1234;
        in.batches = 56;
        in.max_batch = 64;
        in.dropped_frames = 3;
        in.bytes_out = 999;
        std::vector<std::uint8_t> buf;
        WireWriter w{buf};
        encode_stats_reply(w, in);
        const auto out = decode_stats_reply(buf);
        ASSERT_TRUE(out.has_value());
        EXPECT_EQ(out->conns_accepted, in.conns_accepted);
        EXPECT_EQ(out->frames, in.frames);
        EXPECT_EQ(out->batches, in.batches);
        EXPECT_EQ(out->max_batch, in.max_batch);
        EXPECT_EQ(out->dropped_frames, in.dropped_frames);
        EXPECT_EQ(out->bytes_out, in.bytes_out);
    }
    {
        TenantStatReply in;
        in.capacity = 100;
        in.imp_capacity = 90;
        in.hom_capacity = 10;
        in.imp_size = 33;
        in.hits_importance = 7;
        in.imp_ratio = 0.9;
        std::vector<std::uint8_t> buf;
        WireWriter w{buf};
        encode_tenant_stat_reply(w, in);
        const auto out = decode_tenant_stat_reply(buf);
        ASSERT_TRUE(out.has_value());
        EXPECT_EQ(out->capacity, in.capacity);
        EXPECT_EQ(out->imp_capacity, in.imp_capacity);
        EXPECT_EQ(out->imp_size, in.imp_size);
        EXPECT_EQ(out->hits_importance, in.hits_importance);
        EXPECT_DOUBLE_EQ(out->imp_ratio, in.imp_ratio);
    }
    {
        // GET_DATA reply: the slim GetReply plus a length-prefixed blob.
        std::vector<std::uint8_t> buf;
        WireWriter w{buf};
        const std::vector<std::uint8_t> payload{1, 2, 3, 4, 5};
        encode_get_data_reply(w, {{ServeKind::kMissSsd, 42}, payload});
        const auto out = decode_get_data_reply(buf);
        ASSERT_TRUE(out.has_value());
        EXPECT_EQ(out->base.kind, ServeKind::kMissSsd);
        EXPECT_EQ(out->base.served_id, 42U);
        EXPECT_EQ(out->payload, payload);
    }
    {
        // Empty payload is valid (server has no bytes for the id).
        std::vector<std::uint8_t> buf;
        WireWriter w{buf};
        encode_get_data_reply(w, {{ServeKind::kImportanceHit, 7}, {}});
        const auto out = decode_get_data_reply(buf);
        ASSERT_TRUE(out.has_value());
        EXPECT_TRUE(out->payload.empty());
    }
}

TEST(Protocol, WireReaderRejectsShortAndTrailing) {
    const std::uint8_t bytes[] = {1, 2, 3};
    {
        WireReader r{bytes};
        (void)r.u32();
        EXPECT_FALSE(r.ok());  // only 3 bytes available
        (void)r.u64();         // stays poisoned
        EXPECT_FALSE(r.ok());
    }
    {
        WireReader r{bytes};
        (void)r.u8();
        EXPECT_TRUE(r.ok());
        EXPECT_FALSE(r.done());  // trailing bytes = malformed payload
    }
    {
        const auto empty = decode_get_reply({});
        EXPECT_FALSE(empty.has_value());
    }
}

// ========================================================= frame decoding

TEST(FrameDecoder, ReassemblesAcrossArbitraryChunks) {
    // The exact frame stream must come out of the decoder no matter how
    // the byte stream is sliced — partial reads across read() boundaries
    // are the normal case on a busy socket.
    std::vector<std::uint8_t> stream;
    WireWriter w{stream};
    constexpr std::size_t kFrames = 37;
    for (std::uint32_t i = 0; i < kFrames; ++i) {
        encode_get(w, static_cast<std::uint8_t>(i % 5), i * 17,
                   static_cast<double>(i) * 0.5);
    }

    std::mt19937 rng{20260809};
    for (int round = 0; round < 50; ++round) {
        FrameDecoder decoder;
        std::size_t fed = 0;
        std::uint32_t seen = 0;
        std::uniform_int_distribution<std::size_t> chunk{1, 13};
        while (fed < stream.size() || decoder.buffered_bytes() > 0) {
            if (fed < stream.size()) {
                const std::size_t n =
                    std::min(chunk(rng), stream.size() - fed);
                decoder.feed({stream.data() + fed, n});
                fed += n;
            }
            Frame frame;
            while (decoder.next(frame) == FrameDecoder::Result::kFrame) {
                WireReader r{frame.payload};
                const std::uint32_t id = r.u32();
                const double score = r.f64();
                ASSERT_TRUE(r.done());
                EXPECT_EQ(static_cast<Op>(frame.b0), Op::kGet);
                EXPECT_EQ(frame.b1, seen % 5);
                EXPECT_EQ(id, seen * 17);
                EXPECT_DOUBLE_EQ(score, static_cast<double>(seen) * 0.5);
                ++seen;
            }
            if (fed == stream.size()) break;
        }
        EXPECT_EQ(seen, kFrames) << "round " << round;
        EXPECT_FALSE(decoder.poisoned());
    }
}

TEST(FrameDecoder, RejectsOversizedFrame) {
    std::vector<std::uint8_t> bytes(sizeof(std::uint32_t));
    const std::uint32_t len = kMaxFrameLen + 1;
    std::memcpy(bytes.data(), &len, sizeof len);
    FrameDecoder decoder;
    decoder.feed(bytes);
    Frame frame;
    EXPECT_EQ(decoder.next(frame), FrameDecoder::Result::kTooBig);
    EXPECT_TRUE(decoder.poisoned());
    // Poisoned decoders never recover, even when fed a valid frame.
    std::vector<std::uint8_t> valid;
    WireWriter w{valid};
    encode_ping(w);
    decoder.feed(valid);
    EXPECT_EQ(decoder.next(frame), FrameDecoder::Result::kMalformed);
}

TEST(FrameDecoder, RejectsLengthBelowHeader) {
    std::vector<std::uint8_t> bytes(sizeof(std::uint32_t));
    const std::uint32_t len = kHeaderLen - 1;
    std::memcpy(bytes.data(), &len, sizeof len);
    FrameDecoder decoder;
    decoder.feed(bytes);
    Frame frame;
    EXPECT_EQ(decoder.next(frame), FrameDecoder::Result::kMalformed);
    EXPECT_TRUE(decoder.poisoned());
}

TEST(FrameDecoder, FuzzRandomBytesNeverMisbehave) {
    // Arbitrary garbage must produce only the four documented results and
    // never a crash, hang, or bogus giant allocation. Truncated prefixes
    // of valid frames are part of the soup.
    std::vector<std::uint8_t> valid;
    WireWriter w{valid};
    encode_get(w, 1, 99, 1.0);
    encode_stats(w);

    for (std::uint32_t seed = 0; seed < 200; ++seed) {
        std::mt19937 rng{seed};
        std::uniform_int_distribution<int> byte{0, 255};
        std::uniform_int_distribution<std::size_t> len{1, 64};
        FrameDecoder decoder;
        std::size_t frames = 0;
        for (int feeds = 0; feeds < 20; ++feeds) {
            std::vector<std::uint8_t> chunk(len(rng));
            if (seed % 3 == 0) {
                // Truncated valid frame prefix, then garbage.
                const std::size_t take = std::min(chunk.size(), valid.size());
                std::copy_n(valid.begin(), take, chunk.begin());
                for (std::size_t i = take; i < chunk.size(); ++i) {
                    chunk[i] = static_cast<std::uint8_t>(byte(rng));
                }
            } else {
                for (auto& b : chunk) {
                    b = static_cast<std::uint8_t>(byte(rng));
                }
            }
            decoder.feed(chunk);
            Frame frame;
            FrameDecoder::Result r;
            while ((r = decoder.next(frame)) == FrameDecoder::Result::kFrame) {
                EXPECT_LE(frame.payload.size(), kMaxFrameLen);
                ++frames;
                ASSERT_LT(frames, 10000U);
            }
            if (decoder.poisoned()) break;
        }
        EXPECT_LE(decoder.buffered_bytes(), kMaxFrameLen + 64);
    }
}

// ============================================================ live server

class ServerWire : public ::testing::Test {
protected:
    void start(ServerConfig config, MissFetchFn miss_fetch = {},
               PayloadReadFn payload_read = {}) {
        config.port = 0;  // ephemeral
        server_ = std::make_unique<SpiderServer>(std::move(config),
                                                 std::move(miss_fetch),
                                                 std::move(payload_read));
        server_->start();
    }

    Client connect() {
        Client c;
        c.connect("127.0.0.1", server_->port());
        return c;
    }

    std::unique_ptr<SpiderServer> server_;
};

TEST_F(ServerWire, MissAdmitThenImportanceHit) {
    start(ServerConfig{.cache_items = 64});
    Client c = connect();
    const GetReply first = c.get(0, 7, 1.0);
    EXPECT_EQ(first.kind, ServeKind::kMissAdmitted);
    EXPECT_EQ(first.served_id, 7U);
    const GetReply second = c.get(0, 7, 1.0);
    EXPECT_EQ(second.kind, ServeKind::kImportanceHit);
    EXPECT_EQ(second.served_id, 7U);

    const StatsReply stats = c.stats();
    EXPECT_EQ(stats.gets, 2U);
    EXPECT_EQ(stats.errors, 0U);
    EXPECT_EQ(stats.in_flight, 0U);
}

TEST_F(ServerWire, ProbeReflectsResidency) {
    start(ServerConfig{.cache_items = 64});
    Client c = connect();
    EXPECT_FALSE(c.probe(0, 5));
    (void)c.get(0, 5, 1.0);
    EXPECT_TRUE(c.probe(0, 5));
    EXPECT_EQ(c.stats().probes, 2U);
}

TEST_F(ServerWire, PutScoreAndTenantStat) {
    start(ServerConfig{.cache_items = 100});
    Client c = connect();
    (void)c.get(0, 1, 1.0);
    c.put_score(0, 1, 9.0);
    EXPECT_DOUBLE_EQ(server_->tenants().score_of(0, 1), 9.0);

    const TenantStatReply t = c.tenant_stat(0);
    EXPECT_EQ(t.capacity, 100U);
    EXPECT_EQ(t.admitted, 1U);
    EXPECT_EQ(t.misses, 1U);
    EXPECT_EQ(t.imp_size, 1U);
}

TEST_F(ServerWire, MgetServesWholeVector) {
    start(ServerConfig{.cache_items = 256});
    Client c = connect();
    std::vector<std::uint32_t> ids;
    std::vector<double> scores;
    for (std::uint32_t i = 0; i < 50; ++i) {
        ids.push_back(i);
        scores.push_back(1.0 + i);
    }
    const std::vector<GetReply> cold = c.mget(0, ids, scores);
    ASSERT_EQ(cold.size(), ids.size());
    for (const GetReply& r : cold) {
        EXPECT_EQ(r.kind, ServeKind::kMissAdmitted);
    }
    const std::vector<GetReply> warm = c.mget(0, ids, scores);
    ASSERT_EQ(warm.size(), ids.size());
    for (std::size_t i = 0; i < warm.size(); ++i) {
        EXPECT_EQ(warm[i].kind, ServeKind::kImportanceHit);
        EXPECT_EQ(warm[i].served_id, ids[i]);
    }
    const StatsReply stats = c.stats();
    EXPECT_EQ(stats.mget_keys, 100U);
}

TEST_F(ServerWire, TenantSetRatioRepartitions) {
    start(ServerConfig{.cache_items = 100});
    Client c = connect();
    const double applied = c.tenant_set_ratio(0, 0.5);
    EXPECT_NEAR(applied, 0.5, 0.02);
    const TenantStatReply t = c.tenant_stat(0);
    EXPECT_NEAR(static_cast<double>(t.imp_capacity), 50.0, 2.0);
    EXPECT_LE(t.imp_capacity + t.hom_capacity, t.capacity);
}

TEST_F(ServerWire, PutNeighborsServesSurrogate) {
    start(ServerConfig{.cache_items = 100});
    Client c = connect();
    // Admit a surrogate key into the homophily section, listing 77 as its
    // neighbor; a GET of 77 must then be served the surrogate (Case 3).
    const std::vector<std::uint32_t> neighbors{77, 78};
    (void)c.put_neighbors(0, 5, neighbors);
    const GetReply r = c.get(0, 77, 0.1);
    EXPECT_EQ(r.kind, ServeKind::kHomophilyHit);
    EXPECT_EQ(r.served_id, 5U);
}

TEST_F(ServerWire, PingAndMultiTenantStats) {
    ServerConfig config;
    config.cache_items = 100;
    config.tenants = {TenantSpec{.capacity_pct = 60.0, .imp_ratio = 0.9},
                      TenantSpec{.capacity_pct = 40.0, .imp_ratio = 0.5}};
    start(config);
    Client c = connect();
    c.ping();
    EXPECT_EQ(c.tenant_stat(0).capacity, 60U);
    EXPECT_EQ(c.tenant_stat(1).capacity, 40U);
    // Tenant namespaces are disjoint: the same id misses per tenant.
    EXPECT_EQ(c.get(0, 1, 1.0).kind, ServeKind::kMissAdmitted);
    EXPECT_EQ(c.get(1, 1, 1.0).kind, ServeKind::kMissAdmitted);
    EXPECT_EQ(c.get(1, 1, 1.0).kind, ServeKind::kImportanceHit);
}

TEST_F(ServerWire, UnknownOpcodeRejectedConnectionSurvives) {
    start(ServerConfig{.cache_items = 64});
    Client c = connect();
    std::vector<std::uint8_t> raw;
    WireWriter w{raw};
    const auto off = w.begin_frame(/*op=*/0xEE, /*tenant=*/0);
    w.end_frame(off);
    write_raw(c.fd(), raw);

    const auto reply = read_upto(c.fd(), sizeof(std::uint32_t) + kHeaderLen);
    ASSERT_EQ(reply.size(), sizeof(std::uint32_t) + kHeaderLen);
    EXPECT_EQ(static_cast<Status>(reply[5]), Status::kBadOp);
    // Well-formed frame, bad op: the stream is still framable, so the
    // connection lives on.
    c.ping();
    EXPECT_EQ(c.stats().errors, 1U);
}

TEST_F(ServerWire, BadTenantRejected) {
    start(ServerConfig{.cache_items = 64});  // 1 tenant
    Client c = connect();
    c.queue_get(/*tenant=*/7, 1, 1.0);
    const std::vector<Response> replies = c.flush();
    ASSERT_EQ(replies.size(), 1U);
    EXPECT_EQ(replies[0].status, Status::kBadTenant);
    c.ping();  // connection survives
}

TEST_F(ServerWire, TruncatedAndOverlongPayloadsRejected) {
    start(ServerConfig{.cache_items = 64});
    Client c = connect();
    std::vector<std::uint8_t> raw;
    WireWriter w{raw};
    // GET with a 2-byte payload (needs 12).
    auto off = w.begin_frame(static_cast<std::uint8_t>(Op::kGet), 0);
    w.u16(0xABCD);
    w.end_frame(off);
    // GET with one trailing garbage byte.
    off = w.begin_frame(static_cast<std::uint8_t>(Op::kGet), 0);
    w.u32(1);
    w.f64(1.0);
    w.u8(0x5A);
    w.end_frame(off);
    write_raw(c.fd(), raw);

    const std::size_t frame = sizeof(std::uint32_t) + kHeaderLen;
    const auto replies = read_upto(c.fd(), 2 * frame);
    ASSERT_EQ(replies.size(), 2 * frame);
    EXPECT_EQ(static_cast<Status>(replies[5]), Status::kBadPayload);
    EXPECT_EQ(static_cast<Status>(replies[frame + 5]), Status::kBadPayload);
    c.ping();
    EXPECT_EQ(c.stats().errors, 2U);
}

TEST_F(ServerWire, OversizedFrameRepliesThenCloses) {
    start(ServerConfig{.cache_items = 64});
    Client c = connect();
    std::vector<std::uint8_t> raw(sizeof(std::uint32_t) + 16, 0);
    const std::uint32_t len = kMaxFrameLen + 1;
    std::memcpy(raw.data(), &len, sizeof len);
    write_raw(c.fd(), raw);

    // Exactly one kFrameTooBig error frame, then EOF: the stream cannot
    // be re-framed, so the server hangs up.
    const std::size_t frame = sizeof(std::uint32_t) + kHeaderLen;
    const auto reply = read_upto(c.fd(), frame + 1);
    ASSERT_EQ(reply.size(), frame);
    EXPECT_EQ(static_cast<Status>(reply[5]), Status::kFrameTooBig);
    ASSERT_TRUE(eventually([&] { return server_->stats().conns_open == 0; }));
    // The listener is unharmed.
    Client again = connect();
    again.ping();
}

TEST_F(ServerWire, PartialFramesAcrossReadBoundaries) {
    start(ServerConfig{.cache_items = 64});
    Client c = connect();
    std::vector<std::uint8_t> raw;
    WireWriter w{raw};
    encode_get(w, 0, 123, 1.0);
    // Dribble the frame one byte at a time; every write lands as its own
    // read() on the server, exercising reassembly (not just the decoder
    // unit test — the real event-loop path).
    for (const std::uint8_t byte : raw) {
        write_raw(c.fd(), {&byte, 1});
        std::this_thread::sleep_for(1ms);
    }
    const std::size_t frame =
        sizeof(std::uint32_t) + kHeaderLen + /*GetReply*/ 5;
    const auto reply = read_upto(c.fd(), frame);
    ASSERT_EQ(reply.size(), frame);
    EXPECT_EQ(static_cast<Status>(reply[5]), Status::kOk);
    const auto decoded = decode_get_reply(
        {reply.data() + 8, reply.size() - 8});
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(decoded->kind, ServeKind::kMissAdmitted);
    EXPECT_EQ(decoded->served_id, 123U);
}

TEST_F(ServerWire, MalformedStreamFuzzServerSurvives) {
    start(ServerConfig{.cache_items = 64});
    for (std::uint32_t seed = 0; seed < 20; ++seed) {
        std::mt19937 rng{seed};
        std::uniform_int_distribution<int> byte{0, 255};
        std::uniform_int_distribution<std::size_t> len{1, 512};
        Client c = connect();
        std::vector<std::uint8_t> garbage(len(rng));
        for (auto& b : garbage) {
            b = static_cast<std::uint8_t>(byte(rng));
        }
        write_raw(c.fd(), garbage);
        c.close();
    }
    // Whatever the garbage decoded to, the server must still be standing
    // and every fuzz connection must be fully reaped.
    ASSERT_TRUE(eventually([&] { return server_->stats().conns_open == 0; }));
    Client c = connect();
    c.ping();
    EXPECT_EQ(c.get(0, 1, 1.0).kind, ServeKind::kMissAdmitted);
    EXPECT_EQ(server_->stats().in_flight, 0U);
}

TEST_F(ServerWire, PipelinedFlushAnswersInOrderWithBatching) {
    start(ServerConfig{.cache_items = 256});
    Client c = connect();
    constexpr std::uint32_t kDepth = 64;
    for (std::uint32_t i = 0; i < kDepth; ++i) {
        c.queue_get(0, i, 1.0 + i);
    }
    EXPECT_EQ(c.queued(), kDepth);
    const std::vector<Response> replies = c.flush();
    ASSERT_EQ(replies.size(), kDepth);
    for (std::uint32_t i = 0; i < kDepth; ++i) {
        EXPECT_EQ(replies[i].status, Status::kOk);
        const auto r = decode_get_reply(replies[i].payload);
        ASSERT_TRUE(r.has_value());
        EXPECT_EQ(r->served_id, i) << "responses must come back in order";
    }
    const StatsReply stats = c.stats();
    EXPECT_EQ(stats.frames, kDepth);
    // One 1280-byte write on loopback lands in far fewer drain passes
    // than frames — the batching the netbench headline is built on.
    EXPECT_LT(stats.batches, stats.frames);
    EXPECT_GE(stats.max_batch, 8U);
    EXPECT_EQ(stats.in_flight, 0U);
}

TEST_F(ServerWire, MaxPipelineBoundsBatchSize) {
    ServerConfig config;
    config.cache_items = 256;
    config.max_pipeline = 8;
    start(config);
    Client c = connect();
    constexpr std::uint32_t kDepth = 100;
    for (std::uint32_t i = 0; i < kDepth; ++i) {
        c.queue_get(0, i, 1.0);
    }
    const std::vector<Response> replies = c.flush();
    ASSERT_EQ(replies.size(), kDepth);
    const StatsReply stats = server_->stats();
    EXPECT_EQ(stats.frames, kDepth);
    EXPECT_LE(stats.max_batch, 8U);  // chunking honors max_pipeline
    EXPECT_GE(stats.batches, kDepth / 8);
}

TEST_F(ServerWire, DisconnectMidPipelineLeaksNothing) {
    start(ServerConfig{.cache_items = 256});
    constexpr std::uint32_t kDepth = 50;
    {
        Client c = connect();
        for (std::uint32_t i = 0; i < kDepth; ++i) {
            c.queue_get(0, i, 1.0);
        }
        c.send_only();
        c.close();  // vanish without reading a single response
    }
    ASSERT_TRUE(eventually([&] { return server_->stats().conns_open == 0; }));
    const StatsReply stats = server_->stats();
    // Every decoded frame was either fully serviced or counted dropped at
    // close — never left in a half-serviced in-flight slot.
    EXPECT_EQ(stats.in_flight, 0U);
    EXPECT_LE(stats.frames + stats.dropped_frames, kDepth);
    // The server keeps serving. (Whether id 1's frame was serviced before
    // the hangup is a race; only the serve itself is asserted.)
    Client again = connect();
    again.ping();
    EXPECT_NE(again.get(0, 1, 1.0).kind, ServeKind::kFetchFailed);
}

TEST_F(ServerWire, FetchFailureReportedNotAdmitted) {
    std::atomic<int> calls{0};
    start(ServerConfig{.cache_items = 64},
          [&](std::uint8_t, std::uint32_t, storage::SimDuration) {
              calls.fetch_add(1);
              return MissOutcome{.ok = false, .from_ssd = false};
          });
    Client c = connect();
    const GetReply r = c.get(0, 9, 1.0);
    EXPECT_EQ(r.kind, ServeKind::kFetchFailed);
    EXPECT_EQ(calls.load(), 1);
    EXPECT_FALSE(c.probe(0, 9));  // nothing admitted
    EXPECT_EQ(c.tenant_stat(0).admitted, 0U);
}

TEST_F(ServerWire, MgetPartialFetchFailureIsPerId) {
    // A peer/backing store that browns out for some ids must not poison
    // the rest of the vector: each id carries its own status and the
    // connection keeps serving afterwards.
    start(ServerConfig{.cache_items = 64},
          [](std::uint8_t, std::uint32_t id, storage::SimDuration) {
              return MissOutcome{.ok = id % 2 == 0, .from_ssd = false};
          });
    Client c = connect();
    std::vector<std::uint32_t> ids;
    std::vector<double> scores;
    for (std::uint32_t i = 0; i < 20; ++i) {
        ids.push_back(i);
        scores.push_back(1.0);
    }
    const std::vector<GetReply> cold = c.mget(0, ids, scores);
    ASSERT_EQ(cold.size(), ids.size());
    for (std::size_t i = 0; i < cold.size(); ++i) {
        EXPECT_EQ(cold[i].kind, ids[i] % 2 == 0 ? ServeKind::kMissAdmitted
                                                : ServeKind::kFetchFailed)
            << "id " << ids[i];
    }
    // Failed ids were not admitted; successful ones were.
    EXPECT_FALSE(c.probe(0, 1));
    EXPECT_TRUE(c.probe(0, 2));

    // The connection is still healthy: a warm re-mget hits the admitted
    // half and re-reports the failing half, id by id.
    c.ping();
    const std::vector<GetReply> warm = c.mget(0, ids, scores);
    ASSERT_EQ(warm.size(), ids.size());
    for (std::size_t i = 0; i < warm.size(); ++i) {
        EXPECT_EQ(warm[i].kind, ids[i] % 2 == 0 ? ServeKind::kImportanceHit
                                                : ServeKind::kFetchFailed)
            << "id " << ids[i];
    }
    EXPECT_EQ(c.stats().errors, 0U);  // fetch failures are not protocol errors
}

TEST_F(ServerWire, SsdServePathReported) {
    start(ServerConfig{.cache_items = 64},
          [](std::uint8_t, std::uint32_t, storage::SimDuration) {
              return MissOutcome{.ok = true, .from_ssd = true};
          });
    Client c = connect();
    EXPECT_EQ(c.get(0, 3, 1.0).kind, ServeKind::kMissSsd);
    // SSD-served samples are still admitted; next access is a memory hit.
    EXPECT_EQ(c.get(0, 3, 1.0).kind, ServeKind::kImportanceHit);
}

TEST_F(ServerWire, GetDataReturnsMissPayloadThenMemoryHookBytes) {
    // GET_DATA is GET plus the sample's bytes: a miss returns whatever
    // the miss path fetched; a memory hit goes through the payload_read
    // hook (the in-memory cache tracks residency, not bytes).
    const auto fetched_bytes = [](std::uint32_t id) {
        return std::vector<std::uint8_t>{static_cast<std::uint8_t>(id),
                                         0xBE, 0xEF};
    };
    const auto hook_bytes = [](std::uint32_t id) {
        return std::vector<std::uint8_t>{static_cast<std::uint8_t>(id),
                                         0xCA, 0xFE};
    };
    start(
        ServerConfig{.cache_items = 64},
        [&](std::uint8_t, std::uint32_t id, storage::SimDuration) {
            return MissOutcome{.ok = true, .from_ssd = false,
                               .payload = fetched_bytes(id)};
        },
        [&](std::uint8_t, std::uint32_t id) { return hook_bytes(id); });
    Client c = connect();
    const GetDataReply cold = c.get_data(0, 7, 1.0);
    EXPECT_EQ(cold.base.kind, ServeKind::kMissAdmitted);
    EXPECT_EQ(cold.base.served_id, 7U);
    EXPECT_EQ(cold.payload, fetched_bytes(7));
    const GetDataReply warm = c.get_data(0, 7, 1.0);
    EXPECT_EQ(warm.base.kind, ServeKind::kImportanceHit);
    EXPECT_EQ(warm.payload, hook_bytes(7));
    // Plain GET still answers with the slim reply on the same stream.
    EXPECT_EQ(c.get(0, 7, 1.0).kind, ServeKind::kImportanceHit);
}

TEST_F(ServerWire, GetDataServesStoredBytesFromBlockModeSsd) {
    // End to end through a real block store: the miss path writes the
    // fetched bytes back to the SSD tier; after memory eviction the next
    // GET_DATA is served those exact bytes off the segment file.
    const auto dir = std::filesystem::temp_directory_path() /
                     ("spider_server_getdata_" + std::to_string(::getpid()));
    std::filesystem::remove_all(dir);
    storage::SsdTierConfig tier_config;
    tier_config.enabled = true;
    tier_config.capacity_items = 0;
    tier_config.path = dir.string();
    storage::SsdTier ssd{tier_config};

    const auto remote_bytes = [](std::uint32_t id) {
        std::vector<std::uint8_t> out(32);
        for (std::size_t i = 0; i < out.size(); ++i) {
            out[i] = static_cast<std::uint8_t>(id * 7 + i);
        }
        return out;
    };
    start(ServerConfig{.cache_items = 1},  // memory churns immediately
          [&](std::uint8_t, std::uint32_t id, storage::SimDuration) {
              if (auto payload = ssd.fetch_payload(id)) {
                  return MissOutcome{.ok = true, .from_ssd = true,
                                     .payload = std::move(*payload)};
              }
              auto payload = remote_bytes(id);
              ssd.insert(id, payload);
              return MissOutcome{.ok = true, .from_ssd = false,
                                 .payload = std::move(payload)};
          });
    Client c = connect();
    const GetDataReply first = c.get_data(0, 11, 1.0);
    EXPECT_EQ(first.base.kind, ServeKind::kMissAdmitted);
    EXPECT_EQ(first.payload, remote_bytes(11));
    // Evict 11 from the 1-item memory cache: higher-scored ids win the
    // importance section.
    for (std::uint32_t id = 12; id < 16; ++id) {
        (void)c.get(0, id, 100.0 + id);
    }
    ASSERT_FALSE(c.probe(0, 11));
    const GetDataReply ssd_hit = c.get_data(0, 11, 1.0);
    EXPECT_EQ(ssd_hit.base.kind, ServeKind::kMissSsd);
    EXPECT_EQ(ssd_hit.payload, remote_bytes(11));
    EXPECT_GT(ssd.block_stats().read_hits, 0U);
    server_->stop();
    std::filesystem::remove_all(dir);
}

TEST_F(ServerWire, ManyConcurrentClients) {
    start(ServerConfig{.cache_items = 1024});
    constexpr int kClients = 32;
    constexpr std::uint32_t kOps = 40;
    std::vector<std::thread> threads;
    std::atomic<int> failures{0};
    threads.reserve(kClients);
    for (int t = 0; t < kClients; ++t) {
        threads.emplace_back([&, t] {
            try {
                Client c;
                c.connect("127.0.0.1", server_->port());
                for (std::uint32_t i = 0; i < kOps; ++i) {
                    c.queue_get(0, (static_cast<std::uint32_t>(t) * kOps + i) %
                                       512,
                                1.0);
                }
                const auto replies = c.flush();
                if (replies.size() != kOps) failures.fetch_add(1);
                for (const Response& r : replies) {
                    if (r.status != Status::kOk) failures.fetch_add(1);
                }
            } catch (const std::exception&) {
                failures.fetch_add(1);
            }
        });
    }
    for (auto& t : threads) t.join();
    EXPECT_EQ(failures.load(), 0);
    const StatsReply stats = server_->stats();
    EXPECT_EQ(stats.frames, static_cast<std::uint64_t>(kClients) * kOps);
    EXPECT_EQ(stats.in_flight, 0U);
    EXPECT_EQ(stats.conns_accepted, kClients);
}

// ==================================================== simulator front-end

TEST(ServedSimulator, TrainingRunsAgainstLiveServer) {
    // The whole sim loop — sampler, epochs, metrics — driven through the
    // wire instead of an in-process cache. The server runs cache-only
    // (no MissFetchFn): miss costs are charged once, by the simulator.
    ServerConfig config;
    config.port = 0;
    config.cache_items = 200;
    SpiderServer server{config};
    server.start();

    sim::SimConfig sim_config;
    sim_config.dataset = data::cifar10_like(0.02, 42);
    sim_config.strategy = sim::StrategyKind::kBaselineLru;
    sim_config.epochs = 2;
    sim_config.served_port = server.port();
    const auto result = sim::TrainingSimulator{sim_config}.run();

    ASSERT_EQ(result.epochs.size(), 2U);
    std::uint64_t accesses = 0;
    std::uint64_t hits = 0;
    for (const auto& epoch : result.epochs) {
        accesses += epoch.accesses;
        hits += epoch.hits;
        EXPECT_EQ(epoch.hits + epoch.misses, epoch.accesses);
    }
    EXPECT_GT(accesses, 0U);
    // Epoch 2 re-visits every sample; with a 20% slice some must hit.
    EXPECT_GT(hits, 0U);
    // Every simulator access crossed the wire.
    const StatsReply stats = server.stats();
    EXPECT_GE(stats.gets, accesses);
    EXPECT_EQ(stats.in_flight, 0U);
    server.stop();
}

}  // namespace
}  // namespace spider::server
