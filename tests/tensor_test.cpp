// Tests for the dense math kernels: shape handling, matmul variants
// (including the transpose forms used by backprop), activation forward and
// backward, numerically-stable softmax, cross-entropy, and distances.

#include <gtest/gtest.h>

#include <cmath>

#include "tensor/matrix.hpp"
#include "tensor/ops.hpp"
#include "util/rng.hpp"

namespace spider::tensor {
namespace {

Matrix make(std::size_t r, std::size_t c, std::initializer_list<float> vals) {
    Matrix m{r, c};
    std::size_t i = 0;
    for (float v : vals) m.flat()[i++] = v;
    return m;
}

TEST(Matrix, ConstructionAndFill) {
    Matrix m{3, 4, 2.5F};
    EXPECT_EQ(m.rows(), 3U);
    EXPECT_EQ(m.cols(), 4U);
    EXPECT_EQ(m.size(), 12U);
    for (float v : m.flat()) EXPECT_FLOAT_EQ(v, 2.5F);
    m.zero();
    for (float v : m.flat()) EXPECT_FLOAT_EQ(v, 0.0F);
}

TEST(Matrix, RowSpanIsView) {
    Matrix m{2, 3};
    m.row(1)[2] = 9.0F;
    EXPECT_FLOAT_EQ(m.at(1, 2), 9.0F);
}

TEST(Matrix, KaimingInitVariance) {
    util::Rng rng{5};
    Matrix m{256, 256};
    m.randomize_kaiming(rng, 256);
    double sum = 0.0;
    double sq = 0.0;
    for (float v : m.flat()) {
        sum += v;
        sq += static_cast<double>(v) * v;
    }
    const double n = static_cast<double>(m.size());
    EXPECT_NEAR(sum / n, 0.0, 0.005);
    EXPECT_NEAR(sq / n, 2.0 / 256.0, 0.001);  // He variance
}

TEST(Ops, MatmulKnownValues) {
    const Matrix a = make(2, 3, {1, 2, 3, 4, 5, 6});
    const Matrix b = make(3, 2, {7, 8, 9, 10, 11, 12});
    Matrix out;
    matmul(a, b, out);
    ASSERT_EQ(out.rows(), 2U);
    ASSERT_EQ(out.cols(), 2U);
    EXPECT_FLOAT_EQ(out.at(0, 0), 58.0F);
    EXPECT_FLOAT_EQ(out.at(0, 1), 64.0F);
    EXPECT_FLOAT_EQ(out.at(1, 0), 139.0F);
    EXPECT_FLOAT_EQ(out.at(1, 1), 154.0F);
}

TEST(Ops, MatmulTransposeVariantsAgree) {
    util::Rng rng{9};
    Matrix a{5, 7};
    Matrix b{5, 4};
    a.randomize_normal(rng, 0, 1);
    b.randomize_normal(rng, 0, 1);

    // a^T @ b computed directly vs via explicit transpose + matmul.
    Matrix at{7, 5};
    for (std::size_t i = 0; i < 5; ++i) {
        for (std::size_t j = 0; j < 7; ++j) {
            at.at(j, i) = a.at(i, j);
        }
    }
    Matrix expected;
    matmul(at, b, expected);
    Matrix got;
    matmul_at_b(a, b, got);
    for (std::size_t i = 0; i < expected.size(); ++i) {
        EXPECT_NEAR(got.flat()[i], expected.flat()[i], 1e-4);
    }
}

TEST(Ops, MatmulABTransposeAgree) {
    util::Rng rng{10};
    Matrix a{4, 6};
    Matrix b{3, 6};
    a.randomize_normal(rng, 0, 1);
    b.randomize_normal(rng, 0, 1);
    Matrix bt{6, 3};
    for (std::size_t i = 0; i < 3; ++i) {
        for (std::size_t j = 0; j < 6; ++j) {
            bt.at(j, i) = b.at(i, j);
        }
    }
    Matrix expected;
    matmul(a, bt, expected);
    Matrix got;
    matmul_a_bt(a, b, got);
    for (std::size_t i = 0; i < expected.size(); ++i) {
        EXPECT_NEAR(got.flat()[i], expected.flat()[i], 1e-4);
    }
}

TEST(Ops, AddRowVectorBroadcasts) {
    Matrix m = make(2, 3, {0, 0, 0, 1, 1, 1});
    const std::vector<float> bias = {1, 2, 3};
    add_row_vector(m, bias);
    EXPECT_FLOAT_EQ(m.at(0, 0), 1.0F);
    EXPECT_FLOAT_EQ(m.at(0, 2), 3.0F);
    EXPECT_FLOAT_EQ(m.at(1, 1), 3.0F);
}

TEST(Ops, ReluForwardBackward) {
    const Matrix x = make(1, 4, {-1, 0, 2, -3});
    Matrix y;
    relu(x, y);
    EXPECT_FLOAT_EQ(y.at(0, 0), 0.0F);
    EXPECT_FLOAT_EQ(y.at(0, 2), 2.0F);

    const Matrix dy = make(1, 4, {5, 5, 5, 5});
    Matrix dx;
    relu_backward(x, dy, dx);
    EXPECT_FLOAT_EQ(dx.at(0, 0), 0.0F);  // x <= 0: gradient blocked
    EXPECT_FLOAT_EQ(dx.at(0, 1), 0.0F);
    EXPECT_FLOAT_EQ(dx.at(0, 2), 5.0F);
}

TEST(Ops, SoftmaxRowsSumToOne) {
    const Matrix logits = make(2, 3, {1, 2, 3, -1, 0, 1});
    Matrix probs;
    softmax_rows(logits, probs);
    for (std::size_t i = 0; i < 2; ++i) {
        float sum = 0.0F;
        for (float p : probs.row(i)) {
            EXPECT_GT(p, 0.0F);
            sum += p;
        }
        EXPECT_NEAR(sum, 1.0F, 1e-6);
    }
    // Monotone in logits.
    EXPECT_GT(probs.at(0, 2), probs.at(0, 1));
}

TEST(Ops, SoftmaxNumericallyStableForLargeLogits) {
    const Matrix logits = make(1, 3, {1000.0F, 1001.0F, 1002.0F});
    Matrix probs;
    softmax_rows(logits, probs);
    float sum = 0.0F;
    for (float p : probs.row(0)) {
        EXPECT_FALSE(std::isnan(p));
        sum += p;
    }
    EXPECT_NEAR(sum, 1.0F, 1e-6);
}

TEST(Ops, CrossEntropyKnownValue) {
    // Uniform probabilities over 4 classes: CE = ln(4).
    Matrix probs{2, 4, 0.25F};
    const std::vector<std::uint32_t> labels = {0, 3};
    EXPECT_NEAR(cross_entropy(probs, labels), std::log(4.0), 1e-6);
    const auto per_row = cross_entropy_per_row(probs, labels);
    ASSERT_EQ(per_row.size(), 2U);
    EXPECT_NEAR(per_row[0], std::log(4.0), 1e-6);
}

TEST(Ops, SoftmaxCrossEntropyGradient) {
    const Matrix probs = make(1, 3, {0.2F, 0.3F, 0.5F});
    const std::vector<std::uint32_t> labels = {1};
    Matrix grad;
    softmax_cross_entropy_backward(probs, labels, grad);
    EXPECT_NEAR(grad.at(0, 0), 0.2F, 1e-6);
    EXPECT_NEAR(grad.at(0, 1), -0.7F, 1e-6);  // p - 1
    EXPECT_NEAR(grad.at(0, 2), 0.5F, 1e-6);
}

TEST(Ops, ArgmaxRows) {
    const Matrix m = make(2, 3, {1, 9, 2, 7, 3, 5});
    const auto idx = argmax_rows(m);
    ASSERT_EQ(idx.size(), 2U);
    EXPECT_EQ(idx[0], 1U);
    EXPECT_EQ(idx[1], 0U);
}

TEST(Ops, Axpy) {
    const Matrix x = make(1, 3, {1, 2, 3});
    Matrix y = make(1, 3, {10, 10, 10});
    axpy(2.0F, x, y);
    EXPECT_FLOAT_EQ(y.at(0, 0), 12.0F);
    EXPECT_FLOAT_EQ(y.at(0, 2), 16.0F);
}

TEST(Ops, Distances) {
    const std::vector<float> a = {0, 0, 0};
    const std::vector<float> b = {1, 2, 2};
    EXPECT_FLOAT_EQ(squared_l2(a, b), 9.0F);
    EXPECT_FLOAT_EQ(l2_distance(a, b), 3.0F);
    EXPECT_FLOAT_EQ(l2_distance(a, a), 0.0F);
}

}  // namespace
}  // namespace spider::tensor
