// Pipelined IS executor tests: real-thread overlap semantics (one batch of
// slack, ordering, stall counting, exception propagation) and the virtual
// batch-time model for the serial / Fig. 12(a) / Fig. 12(b) schedules.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <thread>
#include <vector>

#include "core/pipeline.hpp"

namespace spider::core {
namespace {

TEST(PipelinedExecutor, RunsSubmittedTasks) {
    PipelinedIsExecutor executor;
    std::atomic<int> counter{0};
    for (int i = 0; i < 10; ++i) {
        executor.submit([&counter] { ++counter; });
    }
    executor.drain();
    EXPECT_EQ(counter.load(), 10);
}

TEST(PipelinedExecutor, TasksExecuteInSubmissionOrder) {
    PipelinedIsExecutor executor;
    std::vector<int> order;
    std::mutex mutex;
    for (int i = 0; i < 20; ++i) {
        executor.submit([&, i] {
            const std::lock_guard lock{mutex};
            order.push_back(i);
        });
    }
    executor.drain();
    ASSERT_EQ(order.size(), 20U);
    for (int i = 0; i < 20; ++i) {
        EXPECT_EQ(order[i], i);
    }
}

TEST(PipelinedExecutor, OverlapsWithCallerWork) {
    // While the IS task sleeps, the caller keeps working: total wall time
    // must be well below the serial sum.
    PipelinedIsExecutor executor;
    const auto start = std::chrono::steady_clock::now();
    static constexpr auto kTask = std::chrono::milliseconds{50};
    executor.submit([] { std::this_thread::sleep_for(kTask); });
    std::this_thread::sleep_for(kTask);  // caller's "Stage2"
    executor.drain();
    const auto elapsed = std::chrono::steady_clock::now() - start;
    EXPECT_LT(elapsed, kTask * 2);  // overlapped, not serialized
}

TEST(PipelinedExecutor, CountsStallsWhenIsIsBottleneck) {
    PipelinedIsExecutor executor;
    for (int i = 0; i < 4; ++i) {
        executor.submit(
            [] { std::this_thread::sleep_for(std::chrono::milliseconds{20}); });
    }
    executor.drain();
    // Back-to-back submissions against slow tasks must have stalled.
    EXPECT_GE(executor.stalls(), 2U);
}

TEST(PipelinedExecutor, NoStallsWhenCallerIsSlower) {
    PipelinedIsExecutor executor;
    for (int i = 0; i < 4; ++i) {
        executor.submit([] {});
        std::this_thread::sleep_for(std::chrono::milliseconds{10});
    }
    executor.drain();
    EXPECT_EQ(executor.stalls(), 0U);
}

TEST(PipelinedExecutor, PropagatesTaskExceptions) {
    PipelinedIsExecutor executor;
    executor.submit([] { throw std::runtime_error{"is stage failed"}; });
    // The failure surfaces at the next interaction with the pipeline.
    EXPECT_THROW(
        {
            executor.submit([] {});
            executor.drain();
        },
        std::runtime_error);
}

TEST(PipelinedExecutor, DrainIsIdempotent) {
    PipelinedIsExecutor executor;
    executor.submit([] {});
    executor.drain();
    executor.drain();  // second drain: no pending task, no crash
    SUCCEED();
}

// ------------------------------------------------------ batch-time model

TEST(BatchTime, NoIsIsJustStages) {
    const auto t = pipelined_batch_time(40.0, 30.0, 16.0, false,
                                        /*is_enabled=*/false, true);
    EXPECT_NEAR(storage::to_ms(t), 70.0, 1e-9);
}

TEST(BatchTime, SerialAddsFullIsCost) {
    const auto t = pipelined_batch_time(40.0, 30.0, 16.0, false, true,
                                        /*pipelined=*/false);
    EXPECT_NEAR(storage::to_ms(t), 86.0, 1e-9);
}

TEST(BatchTime, Fig12aHidesShortIsBehindStage2) {
    // IS (16ms) < Stage2 (30ms): fully hidden.
    const auto hidden = pipelined_batch_time(40.0, 30.0, 16.0, false, true, true);
    EXPECT_NEAR(storage::to_ms(hidden), 70.0, 1e-9);
    // IS (35ms) > Stage2 (30ms): IS becomes the critical path of the tail.
    const auto exposed = pipelined_batch_time(40.0, 30.0, 35.0, false, true, true);
    EXPECT_NEAR(storage::to_ms(exposed), 75.0, 1e-9);
}

TEST(BatchTime, Fig12bHidesLongIsBehindStage2AndNextStage1) {
    // AlexNet-like: IS 35 <= Stage1+Stage2 = 90 -> fully hidden.
    const auto hidden = pipelined_batch_time(62.0, 28.0, 35.0, true, true, true);
    EXPECT_NEAR(storage::to_ms(hidden), 90.0, 1e-9);
    // Pathological IS longer than the whole cycle: IS dominates.
    const auto dominated =
        pipelined_batch_time(10.0, 10.0, 50.0, true, true, true);
    EXPECT_NEAR(storage::to_ms(dominated), 50.0, 1e-9);
}

TEST(BatchTime, ProfileOverloadMatchesRawForm) {
    const nn::ModelProfile profile = nn::make_profile(nn::ModelKind::kResNet18);
    const double stage1 = 40.0;
    const auto via_profile = pipelined_batch_time(profile, stage1, true, true);
    const auto via_raw =
        pipelined_batch_time(stage1, profile.backward_ms, profile.is_ms,
                             profile.long_is_pipeline, true, true);
    EXPECT_EQ(via_profile, via_raw);
}

TEST(BatchTime, PipelineNeverSlowerThanSerial) {
    for (double stage1 : {10.0, 40.0, 80.0}) {
        for (double stage2 : {5.0, 30.0}) {
            for (double is : {4.0, 20.0, 60.0}) {
                for (bool long_is : {false, true}) {
                    const auto pipelined =
                        pipelined_batch_time(stage1, stage2, is, long_is, true,
                                             true);
                    const auto serial = pipelined_batch_time(
                        stage1, stage2, is, long_is, true, false);
                    EXPECT_LE(pipelined, serial)
                        << stage1 << "/" << stage2 << "/" << is;
                    // And never faster than the IS-free lower bound.
                    const auto floor = pipelined_batch_time(
                        stage1, stage2, is, long_is, false, true);
                    EXPECT_GE(pipelined, floor);
                }
            }
        }
    }
}

}  // namespace
}  // namespace spider::core
