// Serialization tests: HNSW and PQ binary round trips (structure,
// search-result equivalence, continued updatability after load) and
// corruption rejection.

#include <gtest/gtest.h>

#include <sstream>

#include "ann/hnsw.hpp"
#include "ann/pq.hpp"
#include "ann/serialize.hpp"
#include "util/rng.hpp"

namespace spider::ann {
namespace {

std::vector<float> random_point(util::Rng& rng, std::size_t dim) {
    std::vector<float> p(dim);
    for (float& x : p) x = static_cast<float>(rng.normal());
    return p;
}

HnswIndex build_sample_index(std::size_t n, std::size_t dim) {
    HnswConfig config;
    config.dim = dim;
    HnswIndex index{config};
    util::Rng rng{21};
    for (std::uint32_t i = 0; i < n; ++i) {
        index.upsert(i, random_point(rng, dim));
    }
    return index;
}

TEST(HnswSerialize, RoundTripPreservesSearchResults) {
    const HnswIndex original = build_sample_index(400, 12);
    std::stringstream buffer;
    save_index(original, buffer);
    const HnswIndex restored = load_index(buffer);

    EXPECT_EQ(restored.size(), original.size());
    EXPECT_EQ(restored.config().dim, original.config().dim);
    EXPECT_EQ(restored.config().M, original.config().M);

    util::Rng rng{22};
    for (int q = 0; q < 25; ++q) {
        const std::vector<float> query = random_point(rng, 12);
        const auto a = original.knn(query, 8);
        const auto b = restored.knn(query, 8);
        ASSERT_EQ(a.size(), b.size());
        for (std::size_t i = 0; i < a.size(); ++i) {
            EXPECT_EQ(a[i].label, b[i].label) << "query " << q << " pos " << i;
            EXPECT_FLOAT_EQ(a[i].distance, b[i].distance);
        }
    }
}

TEST(HnswSerialize, RestoredIndexRemainsUpdatable) {
    const HnswIndex original = build_sample_index(150, 8);
    std::stringstream buffer;
    save_index(original, buffer);
    HnswIndex restored = load_index(buffer);

    util::Rng rng{23};
    // Continue inserting and updating on the restored index.
    for (std::uint32_t i = 150; i < 250; ++i) {
        restored.upsert(i, random_point(rng, 8));
    }
    for (std::uint32_t i = 0; i < 50; ++i) {
        restored.upsert(i, random_point(rng, 8));
    }
    EXPECT_EQ(restored.size(), 250U);
    const auto found = restored.knn(random_point(rng, 8), 5);
    EXPECT_EQ(found.size(), 5U);
}

TEST(HnswSerialize, EmptyIndexRoundTrip) {
    HnswConfig config;
    config.dim = 4;
    const HnswIndex original{config};
    std::stringstream buffer;
    save_index(original, buffer);
    HnswIndex restored = load_index(buffer);
    EXPECT_EQ(restored.size(), 0U);
    restored.upsert(1, std::vector<float>{1, 2, 3, 4});
    EXPECT_TRUE(restored.contains(1));
}

TEST(HnswSerialize, RejectsCorruptedInput) {
    std::stringstream empty;
    EXPECT_THROW(load_index(empty), std::runtime_error);

    std::stringstream garbage{"this is not an index"};
    EXPECT_THROW(load_index(garbage), std::runtime_error);

    // Truncation mid-stream.
    const HnswIndex original = build_sample_index(50, 4);
    std::stringstream buffer;
    save_index(original, buffer);
    const std::string bytes = buffer.str();
    std::stringstream truncated{bytes.substr(0, bytes.size() / 2)};
    EXPECT_THROW(load_index(truncated), std::runtime_error);
}

TEST(PqSerialize, RoundTripPreservesCodes) {
    PqConfig config;
    config.dim = 16;
    config.num_subspaces = 4;
    config.codebook_size = 32;
    ProductQuantizer original{config};
    util::Rng rng{25};
    const std::size_t n = 300;
    std::vector<float> data(n * 16);
    for (float& x : data) x = static_cast<float>(rng.normal());
    original.train(data, n);

    std::stringstream buffer;
    save_quantizer(original, buffer);
    const ProductQuantizer restored = load_quantizer(buffer);
    EXPECT_TRUE(restored.trained());

    for (std::size_t i = 0; i < 20; ++i) {
        const std::span<const float> vec{data.data() + i * 16, 16};
        EXPECT_EQ(restored.encode(vec), original.encode(vec)) << "vec " << i;
        EXPECT_FLOAT_EQ(
            restored.adc_distance(vec, original.encode(vec)),
            original.adc_distance(vec, original.encode(vec)));
    }
}

TEST(PqSerialize, UntrainedRoundTrip) {
    PqConfig config;
    config.dim = 8;
    config.num_subspaces = 2;
    const ProductQuantizer original{config};
    std::stringstream buffer;
    save_quantizer(original, buffer);
    const ProductQuantizer restored = load_quantizer(buffer);
    EXPECT_FALSE(restored.trained());
}

TEST(PqSerialize, RejectsWrongMagic) {
    // An HNSW stream fed to the PQ loader must be rejected.
    const HnswIndex index = build_sample_index(10, 4);
    std::stringstream buffer;
    save_index(index, buffer);
    EXPECT_THROW(load_quantizer(buffer), std::runtime_error);
}

}  // namespace
}  // namespace spider::ann
