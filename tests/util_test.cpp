// Unit and property tests for the util substrate: RNG determinism and
// statistical sanity, alias sampling correctness, Welford stats, slope
// estimation, sliding windows, Savitzky-Golay filtering, the thread pool,
// and the table formatter.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <numeric>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <vector>

#include "util/rng.hpp"
#include "util/sg_filter.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

namespace spider::util {
namespace {

TEST(Rng, DeterministicForSameSeed) {
    Rng a{123};
    Rng b{123};
    for (int i = 0; i < 100; ++i) {
        EXPECT_EQ(a.next(), b.next());
    }
}

TEST(Rng, DifferentSeedsDiverge) {
    Rng a{1};
    Rng b{2};
    int same = 0;
    for (int i = 0; i < 64; ++i) {
        same += a.next() == b.next() ? 1 : 0;
    }
    EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval) {
    Rng rng{7};
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, UniformMeanNearHalf) {
    Rng rng{11};
    double sum = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i) sum += rng.uniform();
    EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformRangeRespectsBounds) {
    Rng rng{13};
    for (int i = 0; i < 1000; ++i) {
        const double x = rng.uniform(-3.0, 5.0);
        EXPECT_GE(x, -3.0);
        EXPECT_LT(x, 5.0);
    }
}

TEST(Rng, UniformIndexCoversRange) {
    Rng rng{17};
    std::vector<int> counts(7, 0);
    for (int i = 0; i < 7000; ++i) {
        ++counts[rng.uniform_index(7)];
    }
    for (int c : counts) {
        EXPECT_GT(c, 700);  // each bucket within ~30% of expectation
        EXPECT_LT(c, 1300);
    }
}

TEST(Rng, UniformIndexRejectsZero) {
    Rng rng{19};
    EXPECT_THROW(rng.uniform_index(0), std::invalid_argument);
}

TEST(Rng, NormalMomentsMatch) {
    Rng rng{23};
    RunningStats stats;
    for (int i = 0; i < 200000; ++i) stats.add(rng.normal(2.0, 3.0));
    EXPECT_NEAR(stats.mean(), 2.0, 0.05);
    EXPECT_NEAR(stats.stddev(), 3.0, 0.05);
}

TEST(Rng, SplitProducesIndependentStream) {
    Rng parent{31};
    Rng child = parent.split();
    // The child stream should not track the parent.
    int same = 0;
    for (int i = 0; i < 64; ++i) {
        same += parent.next() == child.next() ? 1 : 0;
    }
    EXPECT_LT(same, 2);
}

TEST(Rng, ShuffleIsPermutation) {
    Rng rng{37};
    std::vector<std::uint32_t> values(100);
    std::iota(values.begin(), values.end(), 0U);
    rng.shuffle(values);
    std::vector<std::uint32_t> sorted = values;
    std::sort(sorted.begin(), sorted.end());
    for (std::uint32_t i = 0; i < 100; ++i) {
        EXPECT_EQ(sorted[i], i);
    }
}

TEST(Rng, WeightedChoiceRespectsZeroWeights) {
    Rng rng{41};
    const std::vector<double> weights = {0.0, 1.0, 0.0};
    for (int i = 0; i < 100; ++i) {
        EXPECT_EQ(rng.weighted_choice(weights), 1U);
    }
}

TEST(Rng, WeightedChoiceThrowsOnAllZero) {
    Rng rng{43};
    const std::vector<double> weights = {0.0, 0.0};
    EXPECT_THROW(rng.weighted_choice(weights), std::invalid_argument);
}

TEST(AliasSampler, MatchesWeightDistribution) {
    Rng rng{47};
    const std::vector<double> weights = {1.0, 2.0, 4.0, 8.0};
    const AliasSampler alias{weights};
    std::vector<int> counts(4, 0);
    const int n = 150000;
    for (int i = 0; i < n; ++i) ++counts[alias.draw(rng)];
    const double total = 15.0;
    for (std::size_t i = 0; i < weights.size(); ++i) {
        const double expected = weights[i] / total;
        const double observed = static_cast<double>(counts[i]) / n;
        EXPECT_NEAR(observed, expected, 0.01) << "bucket " << i;
    }
}

TEST(AliasSampler, HandlesZeroWeightEntries) {
    Rng rng{53};
    const std::vector<double> weights = {0.0, 5.0, 0.0, 5.0};
    const AliasSampler alias{weights};
    for (int i = 0; i < 1000; ++i) {
        const std::size_t drawn = alias.draw(rng);
        EXPECT_TRUE(drawn == 1 || drawn == 3);
    }
}

TEST(AliasSampler, RejectsEmptyAndNegative) {
    const std::vector<double> empty;
    const std::vector<double> negative = {1.0, -1.0};
    const std::vector<double> zeros = {0.0, 0.0};
    EXPECT_THROW(AliasSampler{empty}, std::invalid_argument);
    EXPECT_THROW(AliasSampler{negative}, std::invalid_argument);
    EXPECT_THROW(AliasSampler{zeros}, std::invalid_argument);
}

TEST(AliasSampler, DrawManyLengthAndRange) {
    Rng rng{59};
    const std::vector<double> weights = {1.0, 1.0, 1.0};
    const AliasSampler alias{weights};
    const auto draws = alias.draw_many(rng, 500);
    ASSERT_EQ(draws.size(), 500U);
    for (std::uint32_t d : draws) EXPECT_LT(d, 3U);
}

TEST(RunningStats, MatchesClosedForm) {
    RunningStats stats;
    const std::vector<double> xs = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
    for (double x : xs) stats.add(x);
    EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
    EXPECT_DOUBLE_EQ(stats.variance(), 4.0);
    EXPECT_DOUBLE_EQ(stats.stddev(), 2.0);
}

TEST(RunningStats, EmptyAndSingle) {
    RunningStats stats;
    EXPECT_EQ(stats.mean(), 0.0);
    EXPECT_EQ(stats.variance(), 0.0);
    stats.add(42.0);
    EXPECT_DOUBLE_EQ(stats.mean(), 42.0);
    EXPECT_EQ(stats.variance(), 0.0);
}

TEST(RunningStats, ResetClears) {
    RunningStats stats;
    stats.add(1.0);
    stats.add(2.0);
    stats.reset();
    EXPECT_EQ(stats.count(), 0U);
    EXPECT_EQ(stats.mean(), 0.0);
}

TEST(Stats, LinearSlopeExact) {
    // y = 3x + 1 over x = 0..9.
    std::vector<double> ys(10);
    for (int i = 0; i < 10; ++i) ys[i] = 3.0 * i + 1.0;
    EXPECT_NEAR(linear_slope(ys), 3.0, 1e-12);
}

TEST(Stats, LinearSlopeOfConstantIsZero) {
    const std::vector<double> ys(20, 5.0);
    EXPECT_DOUBLE_EQ(linear_slope(ys), 0.0);
}

TEST(Stats, LinearSlopeDegenerateInputs) {
    EXPECT_DOUBLE_EQ(linear_slope({}), 0.0);
    const std::vector<double> one = {4.0};
    EXPECT_DOUBLE_EQ(linear_slope(one), 0.0);
}

TEST(SlidingWindow, EvictsOldest) {
    SlidingWindow window{3};
    window.push(1.0);
    window.push(2.0);
    window.push(3.0);
    EXPECT_TRUE(window.full());
    window.push(4.0);
    ASSERT_EQ(window.size(), 3U);
    EXPECT_DOUBLE_EQ(window.values()[0], 2.0);
    EXPECT_DOUBLE_EQ(window.back(), 4.0);
}

TEST(SlidingWindow, SlopeTracksTrend) {
    SlidingWindow window{4};
    for (double x : {1.0, 2.0, 3.0, 4.0}) window.push(x);
    EXPECT_GT(window.slope(), 0.0);
    for (double x : {3.0, 2.0, 1.0, 0.0}) window.push(x);
    EXPECT_LT(window.slope(), 0.0);
}

TEST(SlidingWindow, RejectsZeroCapacity) {
    EXPECT_THROW(SlidingWindow{0}, std::invalid_argument);
}

TEST(SavitzkyGolay, PreservesPolynomialUpToOrder) {
    // A filter of order p reproduces degree-<=p polynomials exactly.
    const SavitzkyGolayFilter filter{7, 2};
    std::vector<double> quadratic(40);
    for (int i = 0; i < 40; ++i) {
        quadratic[i] = 0.5 * i * i - 3.0 * i + 2.0;
    }
    const std::vector<double> smoothed = filter.smooth(quadratic);
    ASSERT_EQ(smoothed.size(), quadratic.size());
    for (std::size_t i = 0; i < quadratic.size(); ++i) {
        EXPECT_NEAR(smoothed[i], quadratic[i], 1e-6) << "index " << i;
    }
}

TEST(SavitzkyGolay, CenterCoefficientsMatchKnownValues) {
    // Classic 5-point quadratic smoother: (-3, 12, 17, 12, -3) / 35.
    const SavitzkyGolayFilter filter{5, 2};
    const auto coeffs = filter.center_coefficients();
    ASSERT_EQ(coeffs.size(), 5U);
    const double expected[5] = {-3.0 / 35, 12.0 / 35, 17.0 / 35, 12.0 / 35,
                                -3.0 / 35};
    for (int i = 0; i < 5; ++i) {
        EXPECT_NEAR(coeffs[i], expected[i], 1e-9);
    }
}

TEST(SavitzkyGolay, ReducesNoiseVariance) {
    Rng rng{61};
    std::vector<double> noisy(200);
    for (std::size_t i = 0; i < noisy.size(); ++i) {
        noisy[i] = std::sin(0.05 * static_cast<double>(i)) + rng.normal(0, 0.3);
    }
    const SavitzkyGolayFilter filter{9, 2};
    const std::vector<double> smoothed = filter.smooth(noisy);
    double noisy_error = 0.0;
    double smooth_error = 0.0;
    for (std::size_t i = 0; i < noisy.size(); ++i) {
        const double truth = std::sin(0.05 * static_cast<double>(i));
        noisy_error += (noisy[i] - truth) * (noisy[i] - truth);
        smooth_error += (smoothed[i] - truth) * (smoothed[i] - truth);
    }
    EXPECT_LT(smooth_error, noisy_error * 0.5);
}

TEST(SavitzkyGolay, ShortSeriesReturnedVerbatim) {
    const SavitzkyGolayFilter filter{7, 2};
    const std::vector<double> shorty = {1.0, 2.0, 3.0};
    EXPECT_EQ(filter.smooth(shorty), shorty);
    EXPECT_DOUBLE_EQ(filter.smooth_last(shorty), 3.0);
}

TEST(SavitzkyGolay, RejectsBadParameters) {
    EXPECT_THROW((SavitzkyGolayFilter{4, 2}), std::invalid_argument);  // even
    EXPECT_THROW((SavitzkyGolayFilter{5, 5}), std::invalid_argument);  // order
    EXPECT_THROW((SavitzkyGolayFilter{1, 0}), std::invalid_argument);  // tiny
}

TEST(SavitzkyGolay, SmoothLastTracksTrailingWindow) {
    const SavitzkyGolayFilter filter{5, 1};
    std::vector<double> linear(30);
    for (int i = 0; i < 30; ++i) linear[i] = 2.0 * i;
    EXPECT_NEAR(filter.smooth_last(linear), 58.0, 1e-9);
}

TEST(ThreadPool, ExecutesAllTasks) {
    ThreadPool pool{4};
    std::atomic<int> counter{0};
    std::vector<std::future<void>> futures;
    for (int i = 0; i < 100; ++i) {
        futures.push_back(pool.submit([&counter] { ++counter; }));
    }
    for (auto& f : futures) f.get();
    EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, ReturnsValues) {
    ThreadPool pool{2};
    auto f = pool.submit([] { return 6 * 7; });
    EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPool, PropagatesExceptions) {
    ThreadPool pool{1};
    auto f = pool.submit([]() -> int { throw std::runtime_error{"boom"}; });
    EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPool, ParallelForCoversAllIndices) {
    ThreadPool pool{3};
    std::vector<std::atomic<int>> touched(64);
    pool.parallel_for(64, [&](std::size_t i) { touched[i] = 1; });
    for (const auto& t : touched) EXPECT_EQ(t.load(), 1);
}

TEST(ThreadPool, RejectsZeroThreads) {
    EXPECT_THROW(ThreadPool{0}, std::invalid_argument);
}

TEST(ThreadPool, ChunkedParallelForCoversEveryIndexExactlyOnce) {
    ThreadPool pool{3};
    std::vector<std::atomic<int>> touched(1000);
    std::atomic<int> chunks{0};
    pool.parallel_for(1000, 64, [&](std::size_t begin, std::size_t end) {
        ASSERT_LT(begin, end);
        ASSERT_LE(end - begin, 64U);
        ++chunks;
        for (std::size_t i = begin; i < end; ++i) ++touched[i];
    });
    for (const auto& t : touched) EXPECT_EQ(t.load(), 1);
    EXPECT_EQ(chunks.load(), 16);  // ceil(1000/64)
}

TEST(ThreadPool, ChunkedParallelForEmptyRangeCallsNothing) {
    ThreadPool pool{2};
    std::atomic<int> calls{0};
    pool.parallel_for(0, 8, [&](std::size_t, std::size_t) { ++calls; });
    EXPECT_EQ(calls.load(), 0);
}

TEST(ThreadPool, ChunkedParallelForZeroGrainActsAsOne) {
    ThreadPool pool{2};
    std::atomic<int> chunks{0};
    pool.parallel_for(5, 0, [&](std::size_t begin, std::size_t end) {
        EXPECT_EQ(end, begin + 1);
        ++chunks;
    });
    EXPECT_EQ(chunks.load(), 5);
}

TEST(ThreadPool, ChunkedParallelForSingleChunkRunsInline) {
    ThreadPool pool{2};
    const auto caller = std::this_thread::get_id();
    std::thread::id ran_on;
    pool.parallel_for(10, 100, [&](std::size_t begin, std::size_t end) {
        EXPECT_EQ(begin, 0U);
        EXPECT_EQ(end, 10U);
        ran_on = std::this_thread::get_id();
    });
    EXPECT_EQ(ran_on, caller);
}

TEST(ThreadPool, ChunkedParallelForPropagatesFirstExceptionAfterDraining) {
    ThreadPool pool{4};
    std::atomic<int> completed{0};
    try {
        pool.parallel_for(100, 10, [&](std::size_t begin, std::size_t) {
            if (begin == 30) throw std::runtime_error{"chunk failed"};
            ++completed;
        });
        FAIL() << "expected the chunk exception to propagate";
    } catch (const std::runtime_error& e) {
        EXPECT_STREQ(e.what(), "chunk failed");
    }
    // All other chunks ran to completion before the rethrow — none were
    // abandoned mid-flight.
    EXPECT_EQ(completed.load(), 9);
}

TEST(ThreadPool, IndexParallelForPropagatesExceptions) {
    ThreadPool pool{2};
    EXPECT_THROW(pool.parallel_for(32,
                                   [](std::size_t i) {
                                       if (i == 7) {
                                           throw std::logic_error{"bad index"};
                                       }
                                   }),
                 std::logic_error);
}

TEST(Table, RendersAlignedColumns) {
    Table table{"T"};
    table.set_header({"a", "bbbb"});
    table.add_row({"xx", "y"});
    std::ostringstream oss;
    table.print(oss);
    const std::string out = oss.str();
    EXPECT_NE(out.find("== T =="), std::string::npos);
    EXPECT_NE(out.find("| a  | bbbb |"), std::string::npos);
    EXPECT_NE(out.find("| xx | y    |"), std::string::npos);
}

TEST(Table, CsvOutput) {
    Table table;
    table.set_header({"x", "y"});
    table.add_row({"1", "2"});
    std::ostringstream oss;
    table.write_csv(oss);
    EXPECT_EQ(oss.str(), "x,y\n1,2\n");
}

TEST(Table, FmtPrecision) {
    EXPECT_EQ(Table::fmt(3.14159, 2), "3.14");
    EXPECT_EQ(Table::fmt(2.0, 0), "2");
}

}  // namespace
}  // namespace spider::util
