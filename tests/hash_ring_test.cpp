// util::HashRing: deterministic ownership, virtual-node balance, and the
// bounded key movement that makes consistent hashing worth its name —
// joins pull keys only onto the new node, leaves move only the departed
// node's keys.

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <vector>

#include "util/hash_ring.hpp"

namespace spider::util {
namespace {

constexpr std::uint64_t kKeys = 40000;

[[nodiscard]] std::vector<std::uint32_t> owners(const HashRing& ring) {
    std::vector<std::uint32_t> out;
    out.reserve(kKeys);
    for (std::uint64_t k = 0; k < kKeys; ++k) {
        out.push_back(ring.owner_of(k));
    }
    return out;
}

TEST(HashRing, DeterministicAndOrderIndependent) {
    HashRing a{64};
    for (std::uint32_t n = 0; n < 5; ++n) a.add_node(n);

    HashRing b{64};
    for (const std::uint32_t n : {3U, 0U, 4U, 2U, 1U}) b.add_node(n);

    EXPECT_EQ(a.num_nodes(), 5U);
    EXPECT_EQ(a.num_points(), b.num_points());
    EXPECT_EQ(owners(a), owners(b));
    // And a rebuilt ring agrees with itself.
    EXPECT_EQ(owners(a), owners(a));
}

TEST(HashRing, MembershipBasics) {
    HashRing ring{16};
    EXPECT_THROW((void)ring.owner_of(1), std::logic_error);
    ring.add_node(7);
    EXPECT_TRUE(ring.contains(7));
    EXPECT_FALSE(ring.contains(8));
    EXPECT_THROW(ring.add_node(7), std::invalid_argument);
    EXPECT_THROW(ring.remove_node(8), std::invalid_argument);
    EXPECT_THROW(ring.add_node(8, 0.0), std::invalid_argument);
    // A one-node ring owns everything.
    for (std::uint64_t k = 0; k < 100; ++k) {
        EXPECT_EQ(ring.owner_of(k), 7U);
    }
    ring.remove_node(7);
    EXPECT_EQ(ring.num_nodes(), 0U);
    EXPECT_EQ(ring.num_points(), 0U);
}

TEST(HashRing, VirtualNodesBalanceOwnership) {
    HashRing ring{128};
    const std::size_t nodes = 8;
    for (std::uint32_t n = 0; n < nodes; ++n) ring.add_node(n);

    std::map<std::uint32_t, std::uint64_t> share;
    for (const std::uint32_t o : owners(ring)) ++share[o];
    ASSERT_EQ(share.size(), nodes);
    const double mean = static_cast<double>(kKeys) / nodes;
    for (const auto& [node, count] : share) {
        // 128 vnodes keep every node within ~2x of the fair share.
        EXPECT_GT(static_cast<double>(count), 0.4 * mean) << "node " << node;
        EXPECT_LT(static_cast<double>(count), 2.0 * mean) << "node " << node;
    }
}

TEST(HashRing, WeightScalesOwnership) {
    HashRing ring{128};
    ring.add_node(0, 1.0);
    ring.add_node(1, 3.0);
    std::uint64_t heavy = 0;
    for (const std::uint32_t o : owners(ring)) heavy += o == 1 ? 1 : 0;
    // Node 1 has 3x the vnodes, so ~75% of the keys (generous band).
    const double frac = static_cast<double>(heavy) / kKeys;
    EXPECT_GT(frac, 0.60);
    EXPECT_LT(frac, 0.90);
}

TEST(HashRing, JoinMovesOnlyTowardTheNewNode) {
    HashRing ring{64};
    const std::size_t nodes = 4;
    for (std::uint32_t n = 0; n < nodes; ++n) ring.add_node(n);
    const std::vector<std::uint32_t> before = owners(ring);

    ring.add_node(static_cast<std::uint32_t>(nodes));
    const std::vector<std::uint32_t> after = owners(ring);

    std::uint64_t moved = 0;
    for (std::uint64_t k = 0; k < kKeys; ++k) {
        if (after[k] == before[k]) continue;
        ++moved;
        // Every moved key must have moved TO the new node; old nodes
        // never exchange keys among themselves on a join.
        EXPECT_EQ(after[k], nodes) << "key " << k;
    }
    // The new node takes about 1/(N+1) of the space.
    const double frac = static_cast<double>(moved) / kKeys;
    EXPECT_GT(frac, 0.5 / (nodes + 1.0));
    EXPECT_LT(frac, 2.0 / (nodes + 1.0));
}

TEST(HashRing, LeaveMovesOnlyTheDepartedKeys) {
    HashRing ring{64};
    for (std::uint32_t n = 0; n < 5; ++n) ring.add_node(n);
    const std::vector<std::uint32_t> before = owners(ring);

    ring.remove_node(2);
    const std::vector<std::uint32_t> after = owners(ring);

    for (std::uint64_t k = 0; k < kKeys; ++k) {
        if (before[k] == 2) {
            EXPECT_NE(after[k], 2U) << "key " << k;  // redistributed
        } else {
            EXPECT_EQ(after[k], before[k]) << "key " << k;  // untouched
        }
    }
    // And re-adding node 2 restores the exact original map (pure-hash
    // points: membership alone determines ownership).
    ring.add_node(2);
    EXPECT_EQ(owners(ring), before);
}

}  // namespace
}  // namespace spider::util
