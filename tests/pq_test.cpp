// Product Quantization tests: training/encoding round trips, quantization
// error behaviour as codebook resolution grows, asymmetric distance
// accuracy, the precomputed-table fast path, and the Table-2 index-size
// model.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "ann/index_size.hpp"
#include "ann/pq.hpp"
#include "util/rng.hpp"

namespace spider::ann {
namespace {

std::vector<float> clustered_vectors(util::Rng& rng, std::size_t count,
                                     std::size_t dim, std::size_t clusters) {
    std::vector<float> data(count * dim);
    for (std::size_t i = 0; i < count; ++i) {
        const double center = static_cast<double>(i % clusters) * 4.0;
        for (std::size_t d = 0; d < dim; ++d) {
            data[i * dim + d] = static_cast<float>(rng.normal(center, 1.0));
        }
    }
    return data;
}

TEST(Pq, RejectsBadConfig) {
    PqConfig bad;
    bad.dim = 10;
    bad.num_subspaces = 3;  // does not divide
    EXPECT_THROW(ProductQuantizer{bad}, std::invalid_argument);

    PqConfig big_codebook;
    big_codebook.codebook_size = 300;  // > 1 byte
    EXPECT_THROW(ProductQuantizer{big_codebook}, std::invalid_argument);
}

TEST(Pq, EncodeBeforeTrainThrows) {
    PqConfig config;
    config.dim = 8;
    config.num_subspaces = 2;
    ProductQuantizer pq{config};
    EXPECT_THROW(pq.encode(std::vector<float>(8, 0.0F)), std::logic_error);
    EXPECT_THROW(pq.decode(std::vector<std::uint8_t>(2, 0)), std::logic_error);
}

TEST(Pq, CodeSizeMatchesSubspaces) {
    PqConfig config;
    config.dim = 16;
    config.num_subspaces = 4;
    config.codebook_size = 16;
    ProductQuantizer pq{config};
    util::Rng rng{3};
    const auto data = clustered_vectors(rng, 200, 16, 4);
    pq.train(data, 200);
    const auto code = pq.encode(std::span<const float>{data.data(), 16});
    EXPECT_EQ(code.size(), 4U);
    EXPECT_EQ(pq.code_bytes(), 4U);
    for (std::uint8_t c : code) EXPECT_LT(c, 16);
}

TEST(Pq, ReconstructionBetterThanZeroBaseline) {
    PqConfig config;
    config.dim = 16;
    config.num_subspaces = 4;
    config.codebook_size = 64;
    ProductQuantizer pq{config};
    util::Rng rng{5};
    const auto data = clustered_vectors(rng, 500, 16, 4);
    pq.train(data, 500);

    const double mse = pq.reconstruction_mse(data, 500);
    // Baseline: predicting zero has MSE ~= E[x^2] (clusters at 0,4,8,12 →
    // large). PQ must be at least 5x better.
    double zero_mse = 0.0;
    for (float x : data) zero_mse += static_cast<double>(x) * x;
    zero_mse /= static_cast<double>(data.size());
    EXPECT_LT(mse, zero_mse / 5.0);
}

TEST(Pq, MoreCentroidsReduceError) {
    util::Rng rng{7};
    const auto data = clustered_vectors(rng, 600, 16, 6);
    double previous = 1e30;
    for (std::size_t k : {4, 16, 64}) {
        PqConfig config;
        config.dim = 16;
        config.num_subspaces = 4;
        config.codebook_size = k;
        ProductQuantizer pq{config};
        pq.train(data, 600);
        const double mse = pq.reconstruction_mse(data, 600);
        EXPECT_LT(mse, previous) << "k=" << k;
        previous = mse;
    }
}

TEST(Pq, AdcDistanceApproximatesTrueDistance) {
    PqConfig config;
    config.dim = 8;
    config.num_subspaces = 4;
    config.codebook_size = 128;
    ProductQuantizer pq{config};
    util::Rng rng{11};
    const auto data = clustered_vectors(rng, 400, 8, 3);
    pq.train(data, 400);

    // ADC distance to an encoded vector should approximate the exact
    // squared distance within the quantization error scale.
    const std::span<const float> query{data.data(), 8};
    double total_rel_error = 0.0;
    int counted = 0;
    for (std::size_t i = 1; i < 50; ++i) {
        const std::span<const float> target{data.data() + i * 8, 8};
        float exact = 0.0F;
        for (std::size_t d = 0; d < 8; ++d) {
            const float diff = query[d] - target[d];
            exact += diff * diff;
        }
        if (exact < 1.0F) continue;  // relative error unstable near zero
        const auto code = pq.encode(target);
        const float adc = pq.adc_distance(query, code);
        total_rel_error += std::abs(adc - exact) / exact;
        ++counted;
    }
    ASSERT_GT(counted, 10);
    EXPECT_LT(total_rel_error / counted, 0.25);
}

TEST(Pq, TableDistanceMatchesAdc) {
    PqConfig config;
    config.dim = 8;
    config.num_subspaces = 2;
    config.codebook_size = 32;
    ProductQuantizer pq{config};
    util::Rng rng{13};
    const auto data = clustered_vectors(rng, 300, 8, 3);
    pq.train(data, 300);

    const std::span<const float> query{data.data(), 8};
    const auto table = pq.build_distance_table(query);
    EXPECT_EQ(table.size(), 2U * 32U);
    for (std::size_t i = 0; i < 20; ++i) {
        const std::span<const float> target{data.data() + i * 8, 8};
        const auto code = pq.encode(target);
        EXPECT_NEAR(pq.table_distance(table, code), pq.adc_distance(query, code),
                    1e-4);
    }
}

TEST(Pq, TrainHandlesFewerVectorsThanCentroids) {
    PqConfig config;
    config.dim = 4;
    config.num_subspaces = 2;
    config.codebook_size = 256;
    ProductQuantizer pq{config};
    util::Rng rng{17};
    const auto data = clustered_vectors(rng, 10, 4, 2);
    pq.train(data, 10);  // count << codebook_size must not crash
    const auto code = pq.encode(std::span<const float>{data.data(), 4});
    const auto decoded = pq.decode(code);
    EXPECT_EQ(decoded.size(), 4U);
}

// --------------------------------------------------------- index size model

TEST(IndexSizeModel, PerVectorBudgetNearPaperValue) {
    const IndexSizeModel model;
    // Paper Table 2 works out to ~110 bytes per indexed image across six
    // dataset scales.
    EXPECT_GT(model.bytes_per_vector(), 90.0);
    EXPECT_LT(model.bytes_per_vector(), 130.0);
}

TEST(IndexSizeModel, ImageNetRowMatchesPaperScale) {
    const IndexSizeModel model;
    // Paper: ImageNet-1K -> ~134 MB index, >1000x compression of 138 GB.
    const double bytes = model.index_bytes(1.2e6);
    const double mb = bytes / (1024.0 * 1024.0);
    EXPECT_GT(mb, 100.0);
    EXPECT_LT(mb, 170.0);
    const double compression = 138.0 * 1024.0 / mb;
    EXPECT_GT(compression, 800.0);
}

TEST(IndexSizeModel, Table2HasSixDatasets) {
    const auto& datasets = table2_datasets();
    ASSERT_EQ(datasets.size(), 6U);
    EXPECT_EQ(datasets.front().name, "ImageNet-1K");
    EXPECT_EQ(datasets.back().name, "LAION-5B");
    // Monotone image counts.
    for (std::size_t i = 1; i < datasets.size(); ++i) {
        EXPECT_GT(datasets[i].image_count, datasets[i - 1].image_count);
    }
}

TEST(IndexSizeModel, FormatBytesHumanReadable) {
    EXPECT_EQ(format_bytes(512.0), "512 B");
    EXPECT_EQ(format_bytes(1024.0), "1 KB");
    EXPECT_EQ(format_bytes(1.5 * 1024 * 1024 * 1024), "1.5 GB");
}

}  // namespace
}  // namespace spider::ann
