// Property-based suites: randomized operation sequences against invariants
// that must hold for *every* implementation — eviction-cache contracts
// shared by all five basic policies, HNSW-vs-brute-force membership
// equivalence under heavy interleaved updates, Eq. 8 schedule monotonicity,
// and two-layer cache conservation laws.

#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <memory>
#include <set>
#include <string>

#include "ann/bruteforce.hpp"
#include "ann/hnsw.hpp"
#include "cache/basic_policies.hpp"
#include "cache/semantic_cache.hpp"
#include "core/elastic.hpp"
#include "util/rng.hpp"

namespace spider {
namespace {

// ------------------------------------------------ eviction-cache contracts

using PolicyFactory =
    std::function<std::unique_ptr<cache::EvictionCache>(std::size_t)>;

struct PolicyCase {
    std::string name;
    PolicyFactory make;
};

class EvictionCacheContract : public ::testing::TestWithParam<PolicyCase> {};

TEST_P(EvictionCacheContract, RandomOpsPreserveInvariants) {
    util::Rng rng{2024};
    for (const std::size_t capacity : {0UL, 1UL, 7UL, 64UL}) {
        auto policy = GetParam().make(capacity);
        std::set<std::uint32_t> shadow;  // reference membership set

        for (int op = 0; op < 3000; ++op) {
            const auto id =
                static_cast<std::uint32_t>(rng.uniform_index(200));
            const int action = static_cast<int>(rng.uniform_index(3));
            if (action == 0) {
                // touch: hit iff resident, never changes membership.
                const bool hit = policy->touch(id);
                EXPECT_EQ(hit, shadow.contains(id));
            } else if (action == 1) {
                const bool was_resident = shadow.contains(id);
                const auto evicted = policy->admit(id);
                if (evicted.has_value()) {
                    EXPECT_TRUE(shadow.erase(*evicted))
                        << "evicted non-resident " << *evicted;
                }
                if (!was_resident && policy->contains(id)) {
                    shadow.insert(id);
                }
                // Admission of a resident id never evicts.
                if (was_resident) {
                    EXPECT_FALSE(evicted.has_value());
                }
            } else {
                EXPECT_EQ(policy->contains(id), shadow.contains(id));
            }
            // Core invariants after every operation.
            ASSERT_LE(policy->size(), capacity);
            ASSERT_EQ(policy->size(), shadow.size());
        }

        // Elastic shrink: size obeys the new bound; survivors were members.
        const std::size_t new_capacity = capacity / 2;
        policy->set_capacity(new_capacity);
        EXPECT_LE(policy->size(), new_capacity);
        std::size_t survivors = 0;
        for (std::uint32_t id : shadow) {
            survivors += policy->contains(id) ? 1 : 0;
        }
        EXPECT_EQ(survivors, policy->size());
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllPolicies, EvictionCacheContract,
    ::testing::Values(
        PolicyCase{"Lru",
                   [](std::size_t c) {
                       return std::make_unique<cache::LruCache>(c);
                   }},
        PolicyCase{"Lfu",
                   [](std::size_t c) {
                       return std::make_unique<cache::LfuCache>(c);
                   }},
        PolicyCase{"Fifo",
                   [](std::size_t c) {
                       return std::make_unique<cache::FifoCache>(c);
                   }},
        PolicyCase{"Static",
                   [](std::size_t c) {
                       return std::make_unique<cache::StaticCache>(c);
                   }},
        PolicyCase{"Random",
                   [](std::size_t c) {
                       return std::make_unique<cache::RandomCache>(
                           c, util::Rng{99});
                   }}),
    [](const ::testing::TestParamInfo<PolicyCase>& info) {
        return info.param.name;
    });

// --------------------------------------- HNSW membership under heavy churn

class HnswChurnTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(HnswChurnTest, MembershipMatchesReferenceAfterInterleavedUpserts) {
    const std::size_t dim = GetParam();
    ann::HnswConfig config;
    config.dim = dim;
    config.M = 8;
    config.ef_construction = 32;
    ann::HnswIndex index{config};
    ann::BruteForceIndex exact{dim};
    util::Rng rng{55};

    std::set<std::uint32_t> inserted;
    for (int op = 0; op < 800; ++op) {
        const auto label = static_cast<std::uint32_t>(rng.uniform_index(150));
        std::vector<float> point(dim);
        for (float& x : point) x = static_cast<float>(rng.normal());
        index.upsert(label, point);
        exact.upsert(label, point);
        inserted.insert(label);

        ASSERT_EQ(index.size(), inserted.size());
        ASSERT_TRUE(index.contains(label));
        // Stored vector equals the latest upsert.
        const auto stored = index.vector_of(label);
        ASSERT_TRUE(stored.has_value());
        for (std::size_t d = 0; d < dim; ++d) {
            ASSERT_FLOAT_EQ((*stored)[d], point[d]);
        }
    }

    // After the churn, every live node must remain *reachable* (self-
    // retrieval with a full-width beam — the in-degree invariant under
    // test), and narrow-beam k-NN must still overlap strongly with brute
    // force.
    double recall_sum = 0.0;
    int queries = 0;
    for (std::uint32_t label : inserted) {
        const auto point = index.vector_of(label);
        const auto reachable = index.knn(*point, 1, inserted.size());
        ASSERT_FALSE(reachable.empty());
        EXPECT_EQ(reachable.front().label, label);

        const auto found = index.knn(*point, 5, 64);
        if (queries < 30) {
            const auto truth = exact.knn(*point, 5);
            std::set<std::uint32_t> truth_set;
            for (const auto& nb : truth) truth_set.insert(nb.label);
            int overlap = 0;
            for (const auto& nb : found) {
                overlap += truth_set.contains(nb.label) ? 1 : 0;
            }
            recall_sum += overlap / 5.0;
            ++queries;
        }
    }
    EXPECT_GE(recall_sum / queries, 0.8);
}

INSTANTIATE_TEST_SUITE_P(Dims, HnswChurnTest, ::testing::Values(4, 16, 48));

// ----------------------------------------------------- Eq. 8 monotonicity

class ElasticScheduleTest : public ::testing::TestWithParam<double> {};

TEST_P(ElasticScheduleTest, RatioMonotoneNonIncreasingOnceActivated) {
    const double gamma = GetParam();
    core::ElasticConfig config;
    config.r_start = 0.9;
    config.r_end = 0.6;
    config.gamma = gamma;
    config.slope_window = 2;
    core::ElasticCacheManager manager{config};

    double previous = 1.0;
    double accuracy = 0.2;
    for (std::size_t epoch = 0; epoch < 60; ++epoch) {
        accuracy += 0.01;  // steady growth
        const double ratio = manager.on_epoch(
            1.0 / (1.0 + static_cast<double>(epoch)), accuracy, epoch, 60);
        EXPECT_LE(ratio, previous + 1e-12) << "epoch " << epoch;
        EXPECT_GE(ratio, config.r_end - 1e-12);
        EXPECT_LE(ratio, config.r_start + 1e-12);
        previous = ratio;
    }
    EXPECT_NEAR(previous, config.r_end, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Gammas, ElasticScheduleTest,
                         ::testing::Values(0.001, 0.01, 0.1));

// --------------------------------------------- two-layer conservation law

TEST(SemanticCacheProperty, SectionCapacitiesAlwaysSumToTotal) {
    util::Rng rng{31};
    cache::TwoLayerSemanticCache cache{200, 0.9};
    for (int op = 0; op < 500; ++op) {
        const double ratio = rng.uniform(0.05, 1.0);
        cache.set_imp_ratio(ratio);
        EXPECT_EQ(cache.importance().capacity() + cache.homophily().capacity(),
                  cache.total_capacity());
        EXPECT_LE(cache.importance().size(), cache.importance().capacity());
        EXPECT_LE(cache.homophily().size(), cache.homophily().capacity());
        // Random admissions between resizes.
        cache.on_miss_fetched(static_cast<std::uint32_t>(rng.uniform_index(1000)),
                              rng.uniform());
        std::vector<std::uint32_t> neighbors{
            static_cast<std::uint32_t>(rng.uniform_index(1000))};
        cache.update_homophily(
            static_cast<std::uint32_t>(1000 + rng.uniform_index(1000)),
            neighbors);
    }
}

TEST(SemanticCacheProperty, LookupNeverMutates) {
    cache::TwoLayerSemanticCache cache{50, 0.8};
    util::Rng rng{37};
    for (std::uint32_t i = 0; i < 40; ++i) {
        cache.on_miss_fetched(i, rng.uniform());
    }
    const std::size_t imp_before = cache.importance().size();
    const std::size_t homo_before = cache.homophily().size();
    for (int i = 0; i < 500; ++i) {
        (void)cache.lookup(static_cast<std::uint32_t>(rng.uniform_index(100)));
    }
    EXPECT_EQ(cache.importance().size(), imp_before);
    EXPECT_EQ(cache.homophily().size(), homo_before);
}

}  // namespace
}  // namespace spider
