// Shadow-tuner bench (DESIGN.md §13): does the online tuner find the
// static sweet spot? Two difficulty mixes — the stock CIFAR-10-like
// workload and a harder one (closer class centroids + long-tail
// imbalance) — each swept over static imp_ratio splits with the elastic
// manager off, then run once more with the ShadowTuner picking the split
// on the fly from the same grid. The headline the JSON pins:
//
//   * on every mix, the auto-tuned run's steady-state (tail) hit ratio
//     lands within 5% of the best static split's — without knowing the
//     workload in advance.
//
// A second table compares the pluggable Importance-section policies
// (semantic vs LRU/LFU/GDSF/cost-aware) at a fixed split, documenting why
// the paper's score-gated admission is the default.
//
// Prints tables and writes BENCH_policy.json so the baseline is diffable
// across PRs. `--smoke` runs a reduced grid with the same hard assertion
// (exits non-zero on failure), wired into ctest as BenchSmoke.PolicyShadow.
// Deterministic for a given seed: virtual clock, no wall-time anywhere.
//
// Usage: bench_policy_shadow [--smoke] [--out BENCH_policy.json]
//                            [--epochs E]

#include <cstdint>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "cache/policy.hpp"
#include "data/presets.hpp"
#include "metrics/metrics.hpp"
#include "sim/simulator.hpp"
#include "util/table.hpp"

namespace {

using spider::cache::PolicyKind;
using spider::sim::SimConfig;
using spider::sim::StrategyKind;
using spider::sim::TrainingSimulator;

struct Mix {
    std::string name;
    spider::data::DatasetSpec dataset;
};

SimConfig base_config(const Mix& mix, std::size_t epochs) {
    SimConfig config;
    config.dataset = mix.dataset;
    config.strategy = StrategyKind::kSpider;
    config.epochs = epochs;
    config.batch_size = 64;
    config.cache_fraction = 0.2;
    config.seed = 5;
    config.elastic_enabled = false;  // static splits; tuner owns changes
    return config;
}

struct RunStats {
    double tail_hit = 0.0;
    double final_ratio = 0.0;
    std::uint64_t switches = 0;
    std::uint64_t shadow_hits = 0;
};

RunStats run_once(SimConfig config) {
    const std::size_t tail = std::max<std::size_t>(config.epochs / 2, 1);
    TrainingSimulator sim{config};
    const spider::metrics::RunResult result = sim.run();
    RunStats stats;
    stats.tail_hit = result.tail_hit_ratio(tail);
    stats.final_ratio = result.epochs.back().imp_ratio;
    for (const auto& epoch : result.epochs) {
        stats.switches += epoch.tuner_switches;
        stats.shadow_hits += epoch.shadow_hits;
    }
    return stats;
}

// The elastic manager validates r_start >= r_end even when disabled, so a
// static split pins both ends of the trajectory to the same ratio.
void pin_ratio(SimConfig& config, double ratio) {
    config.elastic.r_start = ratio;
    config.elastic.r_end = ratio;
}

RunStats run_static(const Mix& mix, std::size_t epochs, double ratio) {
    SimConfig config = base_config(mix, epochs);
    pin_ratio(config, ratio);
    return run_once(config);
}

RunStats run_tuned(const Mix& mix, std::size_t epochs,
                   const std::vector<double>& grid, double start_ratio) {
    SimConfig config = base_config(mix, epochs);
    pin_ratio(config, start_ratio);
    config.tuner.enabled = true;
    config.tuner.ratio_grid = grid;
    config.tuner.margin = 0.005;
    config.tuner.sustain_epochs = 2;
    return run_once(config);
}

}  // namespace

int main(int argc, char** argv) {
    bool smoke = false;
    std::string out_path;
    bool out_set = false;
    std::size_t epochs = 16;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--smoke") {
            smoke = true;
        } else if (arg == "--out" && i + 1 < argc) {
            out_path = argv[++i];
            out_set = true;
        } else if (arg == "--epochs" && i + 1 < argc) {
            epochs = std::stoul(argv[++i]);
        } else {
            std::cerr << "usage: bench_policy_shadow [--smoke] [--out F]"
                         " [--epochs E]\n";
            return 2;
        }
    }
    std::vector<double> grid{0.3, 0.5, 0.7, 0.9};
    if (smoke) {
        epochs = 10;
        grid = {0.3, 0.9};
    } else if (!out_set) {
        out_path = "BENCH_policy.json";
    }

    // Mix 1: the stock workload. Mix 2: closer centroids (harder to
    // separate semantically) + long-tail imbalance — the regime where the
    // right section split is least obvious a priori.
    spider::data::DatasetSpec hard = spider::data::cifar10_like(0.02, 7);
    hard.class_separation = 0.8;
    hard.imbalance_factor = 4.0;
    const std::vector<Mix> mixes{
        {"cifar10", spider::data::cifar10_like(0.02, 7)},
        {"hard", hard},
    };

    std::cout << "### bench_policy_shadow — shadow-tuned split vs static "
                 "imp_ratio sweep\n"
              << "### " << epochs << " epochs, cache fraction 0.2, elastic "
              << "off (static splits stay put; only the tuner moves)\n\n";

    std::ostringstream json;
    json << "{\n  \"mixes\": [\n";
    bool ok = true;
    bool first_mix = true;
    for (const Mix& mix : mixes) {
        spider::util::Table table{"mix: " + mix.name};
        table.set_header({"imp_ratio", "tail hit ratio"});

        double best_static = 0.0;
        double best_ratio = grid.front();
        std::ostringstream sweep_json;
        bool first_point = true;
        for (const double ratio : grid) {
            const RunStats stats = run_static(mix, epochs, ratio);
            table.add_row({spider::util::Table::fmt(ratio, 1),
                           spider::util::Table::fmt(stats.tail_hit, 4)});
            if (stats.tail_hit > best_static) {
                best_static = stats.tail_hit;
                best_ratio = ratio;
            }
            if (!first_point) sweep_json << ", ";
            first_point = false;
            sweep_json << "{\"imp_ratio\": " << ratio
                       << ", \"tail_hit_ratio\": " << stats.tail_hit << "}";
        }

        // The tuner starts from the grid point FARTHEST from the static
        // winner, so matching the sweep requires actually switching.
        const double start =
            best_ratio >= 0.5 ? grid.front() : grid.back();
        const RunStats tuned = run_tuned(mix, epochs, grid, start);
        table.add_row({"tuned (" + spider::util::Table::fmt(start, 1) +
                           " -> " +
                           spider::util::Table::fmt(tuned.final_ratio, 2) +
                           ")",
                       spider::util::Table::fmt(tuned.tail_hit, 4)});
        table.print(std::cout);
        std::cout << "  tuner: " << tuned.switches << " switch(es), "
                  << tuned.shadow_hits << " shadow hits, best static "
                  << spider::util::Table::fmt(best_static, 4) << " @ "
                  << spider::util::Table::fmt(best_ratio, 1) << "\n\n";

        const bool within = tuned.tail_hit >= 0.95 * best_static;
        if (!within) {
            std::cerr << "FAIL: mix " << mix.name << ": tuned tail hit "
                      << tuned.tail_hit << " below 95% of best static "
                      << best_static << "\n";
            ok = false;
        }
        if (!first_mix) json << ",\n";
        first_mix = false;
        json << "    {\"name\": \"" << mix.name << "\", \"static_sweep\": ["
             << sweep_json.str() << "], \"best_static\": " << best_static
             << ", \"best_ratio\": " << best_ratio
             << ", \"tuned\": {\"start_ratio\": " << start
             << ", \"final_ratio\": " << tuned.final_ratio
             << ", \"tail_hit_ratio\": " << tuned.tail_hit
             << ", \"switches\": " << tuned.switches
             << ", \"shadow_hits\": " << tuned.shadow_hits
             << "}, \"within_5pct\": " << (within ? "true" : "false")
             << "}";
    }
    json << "\n  ],\n  \"policies\": [\n";

    // Importance-policy comparison at the stock mix's fixed 0.9 split.
    spider::util::Table ptable{"importance policy @ imp_ratio 0.9 (" +
                               mixes.front().name + ")"};
    ptable.set_header({"policy", "tail hit ratio"});
    const PolicyKind policies[] = {PolicyKind::kSemantic, PolicyKind::kLru,
                                   PolicyKind::kLfu, PolicyKind::kGdsf,
                                   PolicyKind::kCost};
    bool first_policy = true;
    for (const PolicyKind kind : policies) {
        SimConfig config = base_config(mixes.front(), epochs);
        pin_ratio(config, 0.9);
        config.policy.importance = kind;
        const RunStats stats = run_once(config);
        ptable.add_row({spider::cache::to_string(kind),
                        spider::util::Table::fmt(stats.tail_hit, 4)});
        if (!first_policy) json << ",\n";
        first_policy = false;
        json << "    {\"policy\": \"" << spider::cache::to_string(kind)
             << "\", \"tail_hit_ratio\": " << stats.tail_hit << "}";
    }
    ptable.print(std::cout);
    json << "\n  ]\n}\n";

    if (!out_path.empty()) {
        std::ofstream out{out_path};
        out << json.str();
        std::cout << "\nwrote " << out_path << "\n";
    }
    if (!ok) return 1;
    std::cout << "OK: tuned split within 5% of the best static split on "
                 "every mix\n";
    return 0;
}
