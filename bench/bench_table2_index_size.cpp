// Table 2 — storage efficiency of HNSW + Product Quantization indexing.
//
// Prints the six dataset rows with modeled index sizes and compression
// ratios from the explicit per-vector budget (PQ code + links + ids), and
// validates the model empirically: it builds a real HNSW + PQ index over a
// synthetic embedding set and compares measured bytes/vector against the
// model.

#include "ann/hnsw.hpp"
#include "ann/index_size.hpp"
#include "ann/pq.hpp"
#include "bench_common.hpp"

int main() {
    using namespace spider;
    bench::print_preamble("bench_table2_index_size", "Table 2");

    const ann::IndexSizeModel model;
    util::Table table{"Table 2: HNSW+PQ index size vs raw dataset size"};
    table.set_header({"Dataset", "Image Count", "Raw Size", "Index Size",
                      "Compression"});
    const auto format_count = [](double count) {
        return count >= 1e9 ? util::Table::fmt(count / 1e9, 1) + "B"
                            : util::Table::fmt(count / 1e6, 1) + "M";
    };
    for (const ann::DatasetScale& dataset : ann::table2_datasets()) {
        const double index_bytes = model.index_bytes(dataset.image_count);
        table.add_row({dataset.name, format_count(dataset.image_count),
                       ann::format_bytes(dataset.raw_bytes),
                       ann::format_bytes(index_bytes),
                       "~" + util::Table::fmt(dataset.raw_bytes / index_bytes, 0) +
                           "x"});
    }
    table.print(std::cout);
    std::cout << "paper: 134 MB for ImageNet-1K (~1029x) ... 560 GB for "
                 "LAION-5B (~4464x)\n\n";
    std::cout << "model: " << util::Table::fmt(model.bytes_per_vector(), 1)
              << " bytes/vector = " << model.pq_code_bytes << " (PQ code) + "
              << "links + ids\n\n";

    // ---- Empirical check: build a real PQ + HNSW index and compare.
    const std::size_t n = bench::fast_mode() ? 1000 : 4000;
    const std::size_t dim = 64;
    util::Rng rng{9};
    std::vector<float> vectors(n * dim);
    for (std::size_t i = 0; i < n; ++i) {
        const double center = static_cast<double>(i % 16);
        for (std::size_t d = 0; d < dim; ++d) {
            vectors[i * dim + d] = static_cast<float>(rng.normal(center, 1.0));
        }
    }

    ann::PqConfig pq_config;
    pq_config.dim = dim;
    pq_config.num_subspaces = 16;
    ann::ProductQuantizer pq{pq_config};
    pq.train(vectors, n);

    // PQ codes replace raw vectors: count their bytes, plus the real HNSW
    // link structure (graph only — the vectors inside the HNSW would be
    // PQ codes in a production deployment).
    ann::HnswConfig hnsw_config;
    hnsw_config.dim = dim;
    ann::HnswIndex index{hnsw_config};
    for (std::uint32_t i = 0; i < n; ++i) {
        index.upsert(i, std::span<const float>{vectors.data() + i * dim, dim});
    }
    const double raw_bytes = static_cast<double>(n * dim * sizeof(float));
    const double code_bytes = static_cast<double>(n * pq.code_bytes());
    const double graph_bytes =
        static_cast<double>(index.memory_bytes()) - raw_bytes;  // links+ids
    const double compressed = code_bytes + std::max(graph_bytes, 0.0);

    util::Table empirical{"Empirical: real PQ+HNSW over synthetic embeddings"};
    empirical.set_header({"Quantity", "Value"});
    empirical.add_row({"vectors", std::to_string(n)});
    empirical.add_row({"raw bytes/vector",
                       util::Table::fmt(raw_bytes / static_cast<double>(n), 0)});
    empirical.add_row(
        {"PQ code bytes/vector",
         util::Table::fmt(code_bytes / static_cast<double>(n), 0)});
    empirical.add_row(
        {"index bytes/vector (codes+links)",
         util::Table::fmt(compressed / static_cast<double>(n), 0)});
    empirical.add_row({"PQ reconstruction MSE",
                       util::Table::fmt(pq.reconstruction_mse(vectors, n), 3)});
    empirical.add_row(
        {"compression vs raw float32",
         util::Table::fmt(raw_bytes / compressed, 1) + "x"});
    empirical.print(std::cout);
    std::cout << "(raw *images* are ~100x larger than raw float32 embeddings,\n"
                 " which is where the paper's ~1000x total ratios come from)\n";
    return 0;
}
