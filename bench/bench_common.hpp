#pragma once

// Shared configuration for the per-figure/table bench binaries.
//
// Every bench reproduces one table or figure from the paper on the scaled
// synthetic substrate (see DESIGN.md for the substitution table and
// EXPERIMENTS.md for paper-vs-measured numbers). Scales and epoch counts
// are chosen so the *full* harness runs in tens of minutes on one CPU
// core; set SPIDER_BENCH_FAST=1 for a quick smoke pass (reduced epochs and
// dataset sizes, same code paths).

#include <cstdlib>
#include <iostream>
#include <string>

#include "data/presets.hpp"
#include "nn/model_profile.hpp"
#include "sim/simulator.hpp"
#include "util/table.hpp"

namespace spider::bench {

inline bool fast_mode() {
    const char* env = std::getenv("SPIDER_BENCH_FAST");
    return env != nullptr && std::string{env} != "0";
}

/// Epoch budget: the paper trains 100 epochs; the default here keeps the
/// full suite tractable on one core while preserving every trend.
inline std::size_t epochs(std::size_t full = 50) {
    return fast_mode() ? std::max<std::size_t>(full / 8, 4) : full;
}

/// Accuracy-sensitive experiments run under-converged, matching the
/// paper's relative convergence level (its ResNet18/CIFAR-10 reaches ~85%
/// of the architecture's ceiling at 100 epochs).
inline std::size_t epochs_accuracy() { return fast_mode() ? 5 : 16; }

inline double cifar_scale() { return fast_mode() ? 0.02 : 0.06; }
inline double imagenet_scale() { return fast_mode() ? 0.002 : 0.006; }

/// Baseline SimConfig with the calibrated storage model; benches override
/// dataset/strategy/epochs per experiment.
inline sim::SimConfig base_config() {
    sim::SimConfig config;
    config.dataset = data::cifar10_like(cifar_scale());
    config.epochs = epochs();
    config.batch_size = 128;
    config.cache_fraction = 0.20;
    config.seed = 1;
    // Skip re-indexing near-static embeddings (pure optimization; see
    // DESIGN.md "score refresh cadence").
    config.scorer.min_update_distance = 0.03;
    return config;
}

inline sim::SimConfig cifar10_config() { return base_config(); }

inline sim::SimConfig cifar100_config() {
    sim::SimConfig config = base_config();
    config.dataset = data::cifar100_like(cifar_scale());
    return config;
}

inline sim::SimConfig imagenet_config() {
    sim::SimConfig config = base_config();
    config.dataset = data::imagenet_like(imagenet_scale());
    config.model = nn::make_profile(nn::ModelKind::kResNet50);
    return config;
}

inline void print_preamble(const char* experiment, const char* paper_ref) {
    std::cout << "### " << experiment << " — reproduces " << paper_ref
              << "\n";
    std::cout << "### substrate: synthetic (see DESIGN.md), "
              << (fast_mode() ? "FAST mode" : "full mode") << "\n\n";
}

}  // namespace spider::bench
