// Conceptual-figure companions — numeric versions of the paper's
// illustrative figures:
//
//   Fig 1   design-objective summary (hit ratio / accuracy / elasticity)
//   Fig 4   sample-difficulty census of the synthetic datasets
//   Fig 8   embedding-space structure: intra/inter-class distances and a
//           PCA-2D projection summary after training
//   Fig 11  Eq. 8 imp-ratio trajectories for u -> 0 / 0.5 / 1

#include <cmath>

#include "bench_common.hpp"
#include "core/spider_cache.hpp"
#include "nn/mlp_classifier.hpp"
#include "tensor/pca.hpp"

int main() {
    using namespace spider;
    bench::print_preamble("bench_fig_concepts", "Figures 1, 4, 8, 11");

    // ---- Fig 1: three-axis objective summary over the main systems.
    {
        util::Table table{"Fig 1: design objectives (higher is better)"};
        table.set_header({"System", "Cache efficiency (avg hit)",
                          "Accuracy (Top-1)", "Elasticity (ratio range)"});
        for (const sim::StrategyKind strategy :
             {sim::StrategyKind::kSpider, sim::StrategyKind::kShade,
              sim::StrategyKind::kICache, sim::StrategyKind::kCoorDL}) {
            sim::SimConfig config = bench::cifar10_config();
            config.strategy = strategy;
            config.epochs = bench::epochs(16);
            const metrics::RunResult run = sim::TrainingSimulator{config}.run();
            double min_ratio = 1.0;
            double max_ratio = 0.0;
            for (const auto& epoch : run.epochs) {
                min_ratio = std::min(min_ratio, epoch.imp_ratio);
                max_ratio = std::max(max_ratio, epoch.imp_ratio);
            }
            const bool elastic = strategy == sim::StrategyKind::kSpider;
            table.add_row(
                {run.strategy,
                 util::Table::fmt(run.average_hit_ratio() * 100.0, 1) + "%",
                 util::Table::fmt(run.best_accuracy * 100.0, 1) + "%",
                 elastic ? util::Table::fmt((max_ratio - min_ratio) * 100.0, 0) +
                               "% adaptive"
                         : "static"});
        }
        table.print(std::cout);
        std::cout << "\n";
    }

    // ---- Fig 4: difficulty census (the four groups of the paper's
    // airplane example, plus duplicates).
    {
        util::Table table{"Fig 4: sample-difficulty census"};
        table.set_header({"Dataset", "core", "boundary", "isolated",
                          "mislabeled", "duplicate"});
        for (const auto& [label, spec] :
             {std::pair{"CIFAR-10", data::cifar10_like(bench::cifar_scale())},
              std::pair{"CIFAR-100", data::cifar100_like(bench::cifar_scale())}}) {
            const data::SyntheticDataset dataset{spec};
            const double n = static_cast<double>(dataset.size());
            auto pct = [&](data::SampleState state) {
                return util::Table::fmt(
                           100.0 * static_cast<double>(
                                       dataset.count_state(state)) / n,
                           1) +
                       "%";
            };
            table.add_row({label, pct(data::SampleState::kCore),
                           pct(data::SampleState::kBoundary),
                           pct(data::SampleState::kIsolated),
                           pct(data::SampleState::kMislabeled),
                           pct(data::SampleState::kDuplicate)});
        }
        table.print(std::cout);
        std::cout << "\n";
    }

    // ---- Fig 8: embedding structure after training.
    {
        const data::SyntheticDataset dataset{
            data::cifar10_like(bench::cifar_scale())};
        nn::MlpConfig mlp;
        mlp.input_dim = dataset.feature_dim();
        mlp.hidden_dims = {64, 32};
        mlp.num_classes = dataset.num_classes();
        nn::MlpClassifier model{mlp};

        // Brief uniform training to form clusters.
        util::Rng rng{77};
        std::vector<std::uint32_t> ids(dataset.size());
        for (std::uint32_t i = 0; i < ids.size(); ++i) ids[i] = i;
        const std::size_t batch = 128;
        for (int epoch = 0; epoch < 8; ++epoch) {
            rng.shuffle(ids);
            for (std::size_t s = 0; s < ids.size(); s += batch) {
                const std::size_t count = std::min(batch, ids.size() - s);
                const std::vector<std::uint32_t> chunk{
                    ids.begin() + static_cast<std::ptrdiff_t>(s),
                    ids.begin() + static_cast<std::ptrdiff_t>(s + count)};
                const tensor::Matrix x = dataset.gather_features(chunk);
                const auto labels = dataset.gather_labels(chunk);
                model.forward(x, labels);
                model.backward_and_step(labels);
            }
        }

        // Embed the first 800 samples and measure class structure.
        const std::size_t sample_count = std::min<std::size_t>(800,
                                                               dataset.size());
        std::vector<std::uint32_t> subset(ids.begin(),
                                          ids.begin() + sample_count);
        const tensor::Matrix x = dataset.gather_features(subset);
        const auto labels = dataset.gather_labels(subset);
        const nn::ForwardResult fwd = model.forward(x, labels);

        // Normalize rows (the scorer's view) and compute intra/inter means.
        tensor::Matrix embeddings = fwd.embeddings;
        for (std::size_t i = 0; i < embeddings.rows(); ++i) {
            auto row = embeddings.row(i);
            float norm = 0.0F;
            for (float v : row) norm += v * v;
            norm = std::sqrt(std::max(norm, 1e-12F));
            for (float& v : row) v /= norm;
        }
        double intra = 0.0;
        double inter = 0.0;
        std::size_t intra_n = 0;
        std::size_t inter_n = 0;
        for (std::size_t i = 0; i < sample_count; i += 3) {
            for (std::size_t j = i + 1; j < sample_count; j += 7) {
                const float d =
                    tensor::l2_distance(embeddings.row(i), embeddings.row(j));
                if (labels[i] == labels[j]) {
                    intra += d;
                    ++intra_n;
                } else {
                    inter += d;
                    ++inter_n;
                }
            }
        }
        const tensor::PcaResult projection = tensor::pca(embeddings, 2);

        util::Table table{"Fig 8: embedding structure after training"};
        table.set_header({"Quantity", "Value"});
        table.add_row({"mean intra-class distance",
                       util::Table::fmt(intra / static_cast<double>(intra_n), 3)});
        table.add_row({"mean inter-class distance",
                       util::Table::fmt(inter / static_cast<double>(inter_n), 3)});
        table.add_row(
            {"separation ratio (inter/intra)",
             util::Table::fmt(inter / static_cast<double>(inter_n) /
                                  (intra / static_cast<double>(intra_n)),
                              2)});
        table.add_row({"PCA-2D explained variance",
                       util::Table::fmt(projection.explained_variance[0], 3) +
                           " + " +
                           util::Table::fmt(projection.explained_variance[1], 3)});
        table.print(std::cout);
        std::cout << "paper: same-class embeddings cluster, classes separate\n\n";
    }

    // ---- Fig 11: Eq. 8 trajectories under fixed penalties.
    {
        util::Table table{"Fig 11: imp-ratio(t) for r 90%->80% under Eq. 8"};
        table.set_header({"t/T", "u=0 (fast)", "u=0.5", "u=1 (slow)"});
        for (const double progress : {0.0, 0.25, 0.5, 0.75, 1.0}) {
            std::vector<std::string> row = {util::Table::fmt(progress, 2)};
            for (const double u : {0.0, 0.5, 1.0}) {
                const double ratio =
                    0.9 - (0.9 - 0.8) * std::pow(progress, 1.0 + u);
                row.push_back(util::Table::fmt(ratio * 100.0, 1) + "%");
            }
            table.add_row(std::move(row));
        }
        table.print(std::cout);
        std::cout << "paper: u->1 slows the early shift (protecting accuracy),\n"
                     "u->0 accelerates it (harvesting hit ratio)\n";
    }
    return 0;
}
