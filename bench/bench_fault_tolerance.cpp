// Fault-tolerance sweep (DESIGN.md §9, EXPERIMENTS.md "fault injection"):
// trains SpiderCache and the LRU baseline across a grid of
//
//   transient failure rate x periodic-outage duration
//
// on the fault-injected remote store with the resilient client (retry +
// hedge + breaker) and degraded-mode substitution enabled. Reports total
// virtual training time, the fault-attributable slice, the substituted
// fraction, and final accuracy per cell — plus the baseline/SpiderCache
// time ratio, which widens as the storage gets sicker: a higher hit
// ratio means fewer remote fetches exposed to the weather, so the cache
// itself is a fault-tolerance mechanism.
//
// Prints a table and writes BENCH_faults.json so the trend is diffable
// across PRs.
//
// --weather adds Markov-weather rows (DESIGN.md §12.1): the same i.i.d.
// rates modulated by the good/degraded/outage chain, so faults arrive in
// correlated storms instead of one attempt at a time.
//
// A warm-restart comparison always runs (DESIGN.md §12.2): a kill -9 at
// mid-training, restarted cold (no WAL) vs warm (WAL snapshot + log),
// reporting recovered residency and the restart epoch's miss bill.
//
// Usage: bench_fault_tolerance [--out BENCH_faults.json] [--epochs N]
//                              [--weather]

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "metrics/metrics.hpp"
#include "sim/simulator.hpp"
#include "storage/clock.hpp"
#include "util/table.hpp"

namespace {

using namespace spider;

struct Cell {
    double transient_prob = 0.0;
    double outage_ms = 0.0;
    /// Modulate the rates with the Markov weather chain (--weather rows).
    bool weather = false;
};

struct CellResult {
    double total_min = 0.0;
    double fault_min = 0.0;
    double substituted = 0.0;
    double accuracy = 0.0;
    std::uint64_t retries = 0;
    std::uint64_t hedges = 0;
    std::uint64_t trips = 0;
    std::uint64_t skips = 0;
};

CellResult run_cell(sim::StrategyKind strategy, const Cell& cell,
                    std::size_t epochs) {
    sim::SimConfig config = bench::base_config();
    config.strategy = strategy;
    config.epochs = epochs;

    config.faults.enabled =
        cell.transient_prob > 0.0 || cell.outage_ms > 0.0 || cell.weather;
    config.faults.transient_failure_prob = cell.transient_prob;
    config.faults.latency_spike_prob = cell.transient_prob;  // same weather
    config.faults.timeout_ms = 40.0;
    config.faults.outage_start_ms = 2000.0;
    config.faults.outage_duration_ms = cell.outage_ms;
    config.faults.outage_period_ms = cell.outage_ms > 0.0 ? 20000.0 : 0.0;
    config.faults.brownout_factor = 2.0;
    config.faults.brownout_duration_ms = cell.outage_ms > 0.0 ? 500.0 : 0.0;
    if (cell.weather) {
        config.faults.weather.enabled = true;
        config.faults.weather.slot_ms = 500.0;
        config.faults.weather.p_degrade = 0.08;
        config.faults.weather.p_recover = 0.25;
        config.faults.weather.p_fail = 0.10;
        config.faults.weather.p_restore = 0.35;
        config.faults.weather.degraded_mult = 6.0;
        config.faults.weather.degraded_slowdown = 2.5;
    }

    config.resilience.breaker_failure_threshold = 16;
    config.resilience.breaker_cooldown_ms = 400.0;
    config.resilience.max_substitute_fraction = 0.05;

    const metrics::RunResult run = sim::TrainingSimulator{config}.run();
    CellResult r;
    r.total_min = storage::to_minutes(run.total_time);
    r.fault_min = storage::to_minutes(run.total_fault_time());
    r.substituted = run.substituted_fraction();
    r.accuracy = run.final_accuracy;
    for (const metrics::EpochMetrics& e : run.epochs) {
        r.retries += e.fetch_retries;
        r.hedges += e.fetch_hedges;
        r.trips += e.breaker_trips;
        r.skips += e.fault_skips;
    }
    return r;
}

struct RestartResult {
    double total_min = 0.0;
    std::uint64_t restored = 0;
    std::uint64_t restart_misses = 0;     // misses in the restart epoch
    std::uint64_t cold_start_misses = 0;  // first-batch demand misses there
};

/// One mid-training kill -9 under a mildly sick backend: `warm` restores
/// through the WAL, otherwise the restart is stone-cold. `restart_epoch`
/// of zero runs the uninterrupted reference.
RestartResult run_restart(std::size_t epochs, std::size_t restart_epoch,
                          bool warm) {
    sim::SimConfig config = bench::base_config();
    config.strategy = sim::StrategyKind::kSpider;
    config.epochs = epochs;
    config.ssd.enabled = true;
    config.ssd.capacity_items =
        static_cast<std::size_t>(0.3 * static_cast<double>(
                                           config.dataset.num_samples));
    config.faults.enabled = true;
    config.faults.transient_failure_prob = 0.02;
    config.faults.latency_spike_prob = 0.02;
    config.faults.timeout_ms = 40.0;
    config.restart_epoch = restart_epoch;
    const std::string wal_dir = "bench_faults_wal";
    if (warm) config.wal_dir = wal_dir;

    const metrics::RunResult run = sim::TrainingSimulator{config}.run();
    if (warm) std::filesystem::remove_all(wal_dir);
    RestartResult r;
    r.total_min = storage::to_minutes(run.total_time);
    const std::size_t at = restart_epoch > 0 ? restart_epoch : 0;
    if (at < run.epochs.size()) {
        r.restored = run.epochs[at].restored_items;
        r.restart_misses = run.epochs[at].misses;
        r.cold_start_misses = run.epochs[at].cold_start_misses;
    }
    return r;
}

}  // namespace

int main(int argc, char** argv) {
    std::string out_path = "BENCH_faults.json";
    std::size_t epochs = bench::epochs(12);
    bool weather = false;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--out" && i + 1 < argc) {
            out_path = argv[++i];
        } else if (arg == "--epochs" && i + 1 < argc) {
            epochs = static_cast<std::size_t>(std::stoul(argv[++i]));
        } else if (arg == "--weather") {
            weather = true;
        } else {
            std::cerr << "usage: bench_fault_tolerance [--out F] "
                         "[--epochs N] [--weather]\n";
            return 2;
        }
    }

    bench::print_preamble("bench_fault_tolerance",
                          "fault-injected storage (DESIGN.md §9)");

    std::vector<Cell> grid = {
        {0.00, 0.0},    // healthy backend (the zero-cost-off reference)
        {0.02, 0.0},    // sporadic transients + spikes
        {0.05, 0.0},    // sick backend
        {0.00, 4000.0}, // clean but with periodic 4 s outages
        {0.02, 4000.0}, // the acceptance scenario
        {0.05, 8000.0}, // hostile: sick backend, long outages
    };
    if (weather) {
        // The same base rates under the Markov chain: storms of degraded
        // slots multiply them 6x in bursts, plus weather outages.
        grid.push_back({0.02, 0.0, /*weather=*/true});
        grid.push_back({0.02, 4000.0, /*weather=*/true});
    }

    util::Table table{"fault sweep — SpiderCache vs LRU baseline"};
    table.set_header({"transient", "outage ms", "weather", "strategy",
                      "total min", "fault min", "subst", "skips", "retries",
                      "trips", "accuracy", "lru/spider"});

    std::ostringstream json;
    json << "{\n  \"rows\": [\n";
    bool first = true;
    for (const Cell& cell : grid) {
        const CellResult spider =
            run_cell(sim::StrategyKind::kSpider, cell, epochs);
        const CellResult lru =
            run_cell(sim::StrategyKind::kBaselineLru, cell, epochs);
        const double ratio =
            spider.total_min == 0.0 ? 0.0 : lru.total_min / spider.total_min;
        const CellResult* results[] = {&spider, &lru};
        const char* names[] = {"spider", "lru"};
        for (int s = 0; s < 2; ++s) {
            const CellResult& r = *results[s];
            table.add_row({util::Table::fmt(cell.transient_prob, 2),
                           util::Table::fmt(cell.outage_ms, 0),
                           cell.weather ? "markov" : "iid", names[s],
                           util::Table::fmt(r.total_min, 2),
                           util::Table::fmt(r.fault_min, 2),
                           util::Table::fmt(r.substituted, 4),
                           std::to_string(r.skips),
                           std::to_string(r.retries),
                           std::to_string(r.trips),
                           util::Table::fmt(r.accuracy, 3),
                           s == 0 ? util::Table::fmt(ratio, 3) : ""});
            if (!first) json << ",\n";
            first = false;
            json << "    {\"strategy\": \"" << names[s]
                 << "\", \"transient_prob\": " << cell.transient_prob
                 << ", \"outage_ms\": " << cell.outage_ms
                 << ", \"weather\": " << (cell.weather ? "true" : "false")
                 << ", \"total_min\": " << r.total_min
                 << ", \"fault_min\": " << r.fault_min
                 << ", \"substituted_fraction\": " << r.substituted
                 << ", \"fault_skips\": " << r.skips
                 << ", \"retries\": " << r.retries
                 << ", \"hedges\": " << r.hedges
                 << ", \"breaker_trips\": " << r.trips
                 << ", \"accuracy\": " << r.accuracy
                 << ", \"lru_over_spider\": " << ratio << "}";
        }
    }
    table.print(std::cout);

    // ---- Warm vs. cold restart (DESIGN.md §12.2): kill -9 mid-training.
    const std::size_t restart_epoch = std::max<std::size_t>(epochs / 2, 1);
    const RestartResult none = run_restart(epochs, 0, false);
    const RestartResult cold = run_restart(epochs, restart_epoch, false);
    const RestartResult warm = run_restart(epochs, restart_epoch, true);

    util::Table restart_table{
        "kill -9 at epoch " + std::to_string(restart_epoch) +
        " — warm (WAL) vs cold restart"};
    restart_table.set_header({"restart", "total min", "restored",
                              "restart-epoch misses", "cold-start misses"});
    restart_table.add_row({"none", util::Table::fmt(none.total_min, 2), "-",
                           "-", "-"});
    restart_table.add_row({"cold", util::Table::fmt(cold.total_min, 2),
                           std::to_string(cold.restored),
                           std::to_string(cold.restart_misses),
                           std::to_string(cold.cold_start_misses)});
    restart_table.add_row({"warm", util::Table::fmt(warm.total_min, 2),
                           std::to_string(warm.restored),
                           std::to_string(warm.restart_misses),
                           std::to_string(warm.cold_start_misses)});
    std::cout << "\n";
    restart_table.print(std::cout);

    json << "\n  ],\n  \"restart\": {\n"
         << "    \"restart_epoch\": " << restart_epoch << ",\n"
         << "    \"none_total_min\": " << none.total_min << ",\n"
         << "    \"cold_total_min\": " << cold.total_min << ",\n"
         << "    \"warm_total_min\": " << warm.total_min << ",\n"
         << "    \"cold_restored_items\": " << cold.restored << ",\n"
         << "    \"warm_restored_items\": " << warm.restored << ",\n"
         << "    \"cold_restart_misses\": " << cold.restart_misses << ",\n"
         << "    \"warm_restart_misses\": " << warm.restart_misses << ",\n"
         << "    \"cold_cold_start_misses\": " << cold.cold_start_misses
         << ",\n"
         << "    \"warm_cold_start_misses\": " << warm.cold_start_misses
         << "\n  },\n  \"epochs\": " << epochs << "\n}\n";
    std::ofstream out_file{out_path};
    out_file << json.str();
    if (!out_file) {
        std::cerr << "warning: could not write " << out_path << "\n";
        return 1;
    }
    std::cout << "\nwrote " << out_path << "\n";
    return 0;
}
