// Figure 3 — I/O characteristics in DNN training.
//  (a) Per-stage time share for four models with remote storage and no
//      effective cache: Data Loading dominates (>60%), Load + Compute
//      together exceed 95% of epoch time.
//  (b) LRU and LFU hit ratios vs cache size under random sampling: both
//      stay far below the cache fraction (random sampling destroys
//      locality).

#include "bench_common.hpp"

int main() {
    using namespace spider;
    bench::print_preamble("bench_fig3_motivation", "Figure 3(a) and 3(b)");

    // ---- (a) Stage breakdown per model, tiny cache (cold path dominates).
    util::Table breakdown{"Fig 3(a): per-epoch time share by stage (%)"};
    breakdown.set_header(
        {"Model", "Data Loading", "Computation", "Load+Compute"});
    for (const nn::ModelProfile& model : nn::evaluated_profiles()) {
        sim::SimConfig config = bench::cifar10_config();
        config.model = model;
        config.strategy = sim::StrategyKind::kBaselineLru;
        config.cache_fraction = 0.05;
        config.epochs = bench::epochs(10);
        const metrics::RunResult run = sim::TrainingSimulator{config}.run();

        double load_ms = 0.0;
        double compute_ms = 0.0;
        double total_ms = 0.0;
        for (const auto& epoch : run.epochs) {
            load_ms += storage::to_ms(epoch.load_time);
            compute_ms += storage::to_ms(epoch.compute_time);
            total_ms += storage::to_ms(epoch.epoch_time);
        }
        const double load_pct = 100.0 * load_ms / total_ms;
        const double compute_pct = 100.0 * compute_ms / total_ms;
        breakdown.add_row({model.name, util::Table::fmt(load_pct, 1),
                           util::Table::fmt(compute_pct, 1),
                           util::Table::fmt(load_pct + compute_pct, 1)});
    }
    breakdown.print(std::cout);
    std::cout << "paper: Data Loading consistently > 60%, sum > 95%\n\n";

    // ---- (b) LRU / LFU hit ratio vs cache size (ResNet18).
    util::Table hit_table{"Fig 3(b): LRU/LFU hit ratio vs cache size (%)"};
    hit_table.set_header({"Cache size", "LRU", "LFU", "cache fraction"});
    for (const double fraction : {0.10, 0.25, 0.50, 0.75}) {
        std::vector<std::string> row = {
            util::Table::fmt(fraction * 100.0, 0) + "%"};
        for (const sim::StrategyKind strategy :
             {sim::StrategyKind::kBaselineLru, sim::StrategyKind::kLfu}) {
            sim::SimConfig config = bench::cifar10_config();
            config.strategy = strategy;
            config.cache_fraction = fraction;
            config.epochs = bench::epochs(15);
            const metrics::RunResult run = sim::TrainingSimulator{config}.run();
            row.push_back(
                util::Table::fmt(run.average_hit_ratio() * 100.0, 1));
        }
        row.push_back(util::Table::fmt(fraction * 100.0, 0));
        hit_table.add_row(std::move(row));
    }
    hit_table.print(std::cout);
    std::cout << "paper: both policies stay well below the cache fraction\n";
    return 0;
}
