// Figure 5 — sample access frequency per epoch: default (uniform) sampling
// touches every item exactly once per epoch; importance sampling skews the
// frequency by score, and the skew shifts across epochs as importance
// evolves. Measured by driving a real SpiderCache training loop and
// profiling the actual epoch orders it draws.

#include <algorithm>

#include "bench_common.hpp"
#include "core/samplers.hpp"
#include "core/spider_cache.hpp"
#include "nn/mlp_classifier.hpp"

namespace {

struct FrequencyProfile {
    std::size_t max_count = 0;
    double never_drawn_pct = 0.0;
    double top1pct_share = 0.0;  // draw share of the 1% most-drawn samples
};

FrequencyProfile profile_of(const std::vector<std::uint32_t>& order,
                            std::size_t n) {
    std::vector<std::size_t> counts(n, 0);
    for (std::uint32_t id : order) ++counts[id];
    FrequencyProfile profile;
    profile.max_count = *std::max_element(counts.begin(), counts.end());
    profile.never_drawn_pct =
        100.0 *
        static_cast<double>(
            std::count(counts.begin(), counts.end(), std::size_t{0})) /
        static_cast<double>(n);
    std::sort(counts.rbegin(), counts.rend());
    const std::size_t top = std::max<std::size_t>(n / 100, 1);
    std::size_t top_draws = 0;
    for (std::size_t i = 0; i < top; ++i) top_draws += counts[i];
    profile.top1pct_share =
        static_cast<double>(top_draws) / static_cast<double>(order.size());
    return profile;
}

}  // namespace

int main() {
    using namespace spider;
    bench::print_preamble("bench_fig5_frequency", "Figure 5");

    const data::SyntheticDataset dataset{
        data::cifar10_like(bench::cifar_scale())};
    const std::size_t n = dataset.size();
    const std::size_t total_epochs = bench::epochs(30);

    util::Table table{"Fig 5: per-epoch sample frequency profile"};
    table.set_header({"Sampler", "Epoch", "Max draws/sample",
                      "Never drawn (%)", "Top-1% share of draws (%)"});

    // Default sampling: exact permutation, every epoch identical profile.
    core::UniformSampler uniform{n, util::Rng{3}};
    for (const std::size_t epoch : {std::size_t{1}, total_epochs}) {
        const auto profile = profile_of(uniform.epoch_order(epoch), n);
        table.add_row({"Default", std::to_string(epoch),
                       std::to_string(profile.max_count),
                       util::Table::fmt(profile.never_drawn_pct, 1),
                       util::Table::fmt(profile.top1pct_share * 100.0, 1)});
    }

    // Importance sampling: drive a real SpiderCache + model loop and
    // profile the orders it actually draws at several training stages.
    nn::MlpConfig mlp;
    mlp.input_dim = dataset.feature_dim();
    mlp.hidden_dims = {64, 32};
    mlp.num_classes = dataset.num_classes();
    mlp.seed = 5;
    nn::MlpClassifier model{mlp};

    core::SpiderCacheConfig sc;
    sc.dataset_size = n;
    sc.label_of = [&dataset](std::uint32_t id) { return dataset.label_of(id); };
    sc.cache_items = n / 5;
    sc.embedding_dim = 32;
    sc.total_epochs = total_epochs;
    core::SpiderCache spider{sc};

    util::Rng aug_rng{11};
    const std::size_t batch = 128;
    const std::size_t mid = std::max<std::size_t>(total_epochs / 4, 2);
    for (std::size_t epoch = 1; epoch <= total_epochs; ++epoch) {
        const auto order = spider.epoch_order();
        if (epoch == 1 || epoch == mid || epoch == total_epochs) {
            const auto profile = profile_of(order, n);
            table.add_row(
                {"Importance", std::to_string(epoch),
                 std::to_string(profile.max_count),
                 util::Table::fmt(profile.never_drawn_pct, 1),
                 util::Table::fmt(profile.top1pct_share * 100.0, 1)});
        }
        for (std::size_t start = 0; start < order.size(); start += batch) {
            const std::size_t count = std::min(batch, order.size() - start);
            const std::vector<std::uint32_t> ids{
                order.begin() + static_cast<std::ptrdiff_t>(start),
                order.begin() + static_cast<std::ptrdiff_t>(start + count)};
            const tensor::Matrix features =
                dataset.gather_features_augmented(ids, aug_rng);
            const auto labels = dataset.gather_labels(ids);
            const nn::ForwardResult fwd = model.forward(features, labels);
            model.backward_and_step(labels);
            spider.observe_batch(ids, fwd.embeddings);
        }
        spider.end_epoch(
            model.evaluate(dataset.test_features(), dataset.test_labels()));
    }

    table.print(std::cout);
    std::cout << "paper: default = once per item; IS skewed, varying by epoch\n";
    return 0;
}
