// bench_ssd — the on-disk SSD block tier (DESIGN.md §14).
//
// Three measurements:
//   (a) bloom effectiveness: disk reads per absent-id lookup against a
//       sealed segment set, bloom on vs bloom off. The miss path should
//       touch (almost) no disk with the filter on — each false positive
//       costs exactly one index-block read — and exactly one index-block
//       read per segment probe with it off.
//   (b) simulator parity: a block-mode run must reproduce the residency
//       model's per-epoch SSD hit accounting bit for bit (the store moves
//       bytes, never residency decisions).
//   (c) GC under a byte budget: whole-segment collection keeps bytes
//       bounded while the newest working set stays resident.
//
// Prints tables and writes BENCH_ssd.json so the baseline is diffable.
// Usage: bench_ssd [--smoke] [--out BENCH_ssd.json]
// --smoke asserts the invariants and exits non-zero on violation.

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "storage/ssd_block_store.hpp"
#include "storage/ssd_tier.hpp"

namespace {

namespace fs = std::filesystem;
using spider::storage::SsdBlockStore;
using spider::storage::SsdBlockStoreConfig;

struct TempDir {
    explicit TempDir(const std::string& tag) {
        path = fs::temp_directory_path() /
               ("spider_bench_ssd_" + std::to_string(::getpid()) + "_" + tag);
        fs::remove_all(path);
    }
    ~TempDir() { fs::remove_all(path); }
    fs::path path;
};

std::vector<std::uint8_t> payload_for(std::uint32_t id, std::size_t size) {
    std::vector<std::uint8_t> out(size);
    for (std::size_t i = 0; i < size; ++i) {
        out[i] = static_cast<std::uint8_t>(id * 131 + i * 7);
    }
    return out;
}

struct BloomPoint {
    std::size_t bits_per_key = 0;
    double disk_reads_per_lookup = 0.0;
    double fp_rate = 0.0;        // per segment probe
    double skip_rate = 0.0;      // per segment probe
    std::uint64_t disk_reads = 0;
};

/// Writes `keys` records, seals everything, then looks up `lookups`
/// absent ids and reports what the bloom let through to disk.
BloomPoint absent_lookup_cost(std::size_t keys, std::size_t lookups,
                              std::size_t bits_per_key) {
    TempDir dir{"bloom_" + std::to_string(bits_per_key)};
    SsdBlockStoreConfig config;
    config.dir = dir.path.string();
    config.segment_bytes = 64U << 20;  // one sealed segment holds all keys
    config.bloom_bits_per_key = bits_per_key;
    SsdBlockStore store{config};
    for (std::uint32_t id = 0; id < keys; ++id) {
        store.write(id, payload_for(id, 64));
    }
    store.seal_active();

    const auto before = store.stats();
    for (std::uint32_t i = 0; i < lookups; ++i) {
        (void)store.read(1000000U + i * 7);
    }
    const auto after = store.stats();
    const auto probes = static_cast<double>(lookups);
    BloomPoint point;
    point.bits_per_key = bits_per_key;
    point.disk_reads = after.disk_reads - before.disk_reads;
    point.disk_reads_per_lookup =
        static_cast<double>(point.disk_reads) / probes;
    point.fp_rate = static_cast<double>(after.bloom_false_positives -
                                        before.bloom_false_positives) /
                    probes;
    point.skip_rate =
        static_cast<double>(after.bloom_skips - before.bloom_skips) / probes;
    return point;
}

struct ParityResult {
    std::uint64_t residency_ssd_hits = 0;
    std::uint64_t block_ssd_hits = 0;
    double hit_ratio = 0.0;  // SSD hits / tier consults, whole run
    bool epochs_match = true;
};

ParityResult simulator_parity(std::size_t epochs) {
    TempDir dir{"parity"};
    spider::sim::SimConfig model;
    model.dataset = spider::data::cifar10_like(0.02, 61);
    model.strategy = spider::sim::StrategyKind::kBaselineLru;
    model.epochs = epochs;
    model.seed = 19;
    model.ssd.enabled = true;
    model.ssd.capacity_items = 300;

    spider::sim::SimConfig block = model;
    block.ssd.path = dir.path.string();

    const auto a = spider::sim::TrainingSimulator{model}.run();
    const auto b = spider::sim::TrainingSimulator{block}.run();

    ParityResult result;
    std::uint64_t consults = 0;
    for (std::size_t i = 0; i < a.epochs.size(); ++i) {
        result.residency_ssd_hits += a.epochs[i].ssd_hits;
        result.block_ssd_hits += b.epochs[i].ssd_hits;
        consults += b.epochs[i].ssd_hits + b.epochs[i].ssd_misses;
        if (a.epochs[i].ssd_hits != b.epochs[i].ssd_hits ||
            a.epochs[i].ssd_misses != b.epochs[i].ssd_misses) {
            result.epochs_match = false;
        }
    }
    if (consults > 0) {
        result.hit_ratio = static_cast<double>(result.block_ssd_hits) /
                           static_cast<double>(consults);
    }
    return result;
}

struct GcResult {
    std::size_t bytes_written = 0;
    std::size_t bytes_used = 0;
    std::uint64_t segments_collected = 0;
    std::size_t resident_items = 0;
    bool newest_resident = true;
};

GcResult gc_under_budget(std::size_t inserts) {
    TempDir dir{"gc"};
    spider::storage::SsdTierConfig config;
    config.enabled = true;
    config.capacity_items = 0;
    config.path = dir.path.string();
    config.capacity_mb = 1;
    config.segment_mb = 1;
    spider::storage::SsdTier tier{config};

    constexpr std::size_t kChunk = 32 * 1024;
    const std::vector<std::uint8_t> chunk(kChunk, 0x5A);
    for (std::uint32_t id = 0; id < inserts; ++id) {
        tier.insert(id, chunk);
    }
    GcResult result;
    result.bytes_written = inserts * kChunk;
    result.bytes_used = tier.bytes_used();
    result.segments_collected = tier.block_stats().segments_collected;
    result.resident_items = tier.resident_items();
    result.newest_resident =
        tier.fetch(static_cast<std::uint32_t>(inserts - 1));
    return result;
}

}  // namespace

int main(int argc, char** argv) {
    bool smoke = false;
    std::string out_path;
    bool out_set = false;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--smoke") {
            smoke = true;
        } else if (arg == "--out" && i + 1 < argc) {
            out_path = argv[++i];
            out_set = true;
        } else {
            std::cerr << "usage: bench_ssd [--smoke] [--out F]\n";
            return 2;
        }
    }
    if (!smoke && !out_set) out_path = "BENCH_ssd.json";

    const std::size_t keys = smoke ? 2000 : 8000;
    const std::size_t lookups = smoke ? 10000 : 50000;
    const std::size_t parity_epochs = smoke ? 3 : 6;
    const std::size_t gc_inserts = smoke ? 96 : 256;

    std::cout << "### bench_ssd — on-disk block tier: bloom-guarded reads, "
                 "sim parity, segment GC\n"
              << "### " << keys << " keys sealed, " << lookups
              << " absent-id lookups per filter setting\n\n";

    // ---- (a) bloom on vs off.
    const BloomPoint with_bloom = absent_lookup_cost(keys, lookups, 10);
    const BloomPoint no_bloom = absent_lookup_cost(keys, lookups, 0);
    const double theoretical =
        spider::storage::BloomFilter::theoretical_fpr(10);

    spider::util::Table bloom_table{"absent-id lookup cost"};
    // skip rate can exceed 1: every lookup probes each segment (active +
    // sealed), and each probe the bloom rejects counts as one skip.
    bloom_table.set_header({"bits/key", "disk reads/lookup", "skips/lookup",
                            "FP rate", "theoretical FPR"});
    bloom_table.add_row({"10",
                         spider::util::Table::fmt(
                             with_bloom.disk_reads_per_lookup, 4),
                         spider::util::Table::fmt(with_bloom.skip_rate, 2),
                         spider::util::Table::fmt(with_bloom.fp_rate, 4),
                         spider::util::Table::fmt(theoretical, 4)});
    bloom_table.add_row(
        {"0 (off)",
         spider::util::Table::fmt(no_bloom.disk_reads_per_lookup, 4),
         spider::util::Table::fmt(no_bloom.skip_rate, 2), "n/a", "n/a"});
    bloom_table.print(std::cout);
    std::cout << "\n";

    // ---- (b) simulator parity.
    const ParityResult parity = simulator_parity(parity_epochs);
    spider::util::Table parity_table{"block mode vs residency model"};
    parity_table.set_header(
        {"mode", "ssd hits", "per-epoch match", "ssd hit ratio"});
    parity_table.add_row(
        {"residency", std::to_string(parity.residency_ssd_hits), "-", "-"});
    parity_table.add_row({"block", std::to_string(parity.block_ssd_hits),
                          parity.epochs_match ? "yes" : "NO",
                          spider::util::Table::fmt(parity.hit_ratio, 4)});
    parity_table.print(std::cout);
    std::cout << "\n";

    // ---- (c) GC under a 1 MiB budget.
    const GcResult gc = gc_under_budget(gc_inserts);
    spider::util::Table gc_table{"whole-segment GC, 1 MiB budget"};
    gc_table.set_header({"bytes written", "bytes held", "segments GCed",
                         "resident items", "newest resident"});
    gc_table.add_row({std::to_string(gc.bytes_written),
                      std::to_string(gc.bytes_used),
                      std::to_string(gc.segments_collected),
                      std::to_string(gc.resident_items),
                      gc.newest_resident ? "yes" : "NO"});
    gc_table.print(std::cout);
    std::cout << "\n";

    // ---- verdicts (the --smoke gate).
    bool ok = true;
    const auto check = [&ok](bool condition, const char* what) {
        std::cout << (condition ? "PASS: " : "FAIL: ") << what << "\n";
        ok = ok && condition;
    };
    // The headline claim: with the bloom on, absent-id lookups are served
    // from memory — disk reads stay under 2% of lookups (each one is a
    // bloom false positive paying a single index-block read).
    check(with_bloom.disk_reads_per_lookup <= 0.02,
          "bloom on: disk reads <= 2% of absent lookups");
    check(with_bloom.fp_rate <= 2.0 * theoretical,
          "bloom FP rate within 2x theoretical");
    check(no_bloom.disk_reads_per_lookup >= 1.0,
          "bloom off: every absent lookup hits disk");
    check(parity.epochs_match,
          "block-mode hit accounting matches residency model per epoch");
    check(gc.segments_collected > 0, "GC collected stale segments");
    check(gc.bytes_used <= 2U << 20,
          "bytes held bounded by budget + one active segment");
    check(gc.newest_resident, "newest id stayed resident through GC");

    if (!out_path.empty()) {
        std::ostringstream json;
        json << "{\n"
             << "  \"bloom\": {\n"
             << "    \"keys\": " << keys << ", \"absent_lookups\": "
             << lookups << ", \"bits_per_key\": 10,\n"
             << "    \"theoretical_fpr\": " << theoretical
             << ", \"measured_fp_rate\": " << with_bloom.fp_rate << ",\n"
             << "    \"disk_reads_per_lookup\": "
             << with_bloom.disk_reads_per_lookup
             << ", \"skip_rate\": " << with_bloom.skip_rate << ",\n"
             << "    \"nobloom_disk_reads_per_lookup\": "
             << no_bloom.disk_reads_per_lookup << "\n  },\n"
             << "  \"parity\": {\n"
             << "    \"epochs\": " << parity_epochs
             << ", \"residency_ssd_hits\": " << parity.residency_ssd_hits
             << ", \"block_ssd_hits\": " << parity.block_ssd_hits << ",\n"
             << "    \"per_epoch_match\": "
             << (parity.epochs_match ? "true" : "false")
             << ", \"ssd_hit_ratio\": " << parity.hit_ratio << "\n  },\n"
             << "  \"gc\": {\n"
             << "    \"bytes_written\": " << gc.bytes_written
             << ", \"bytes_held\": " << gc.bytes_used
             << ", \"segments_collected\": " << gc.segments_collected
             << ",\n    \"resident_items\": " << gc.resident_items
             << ", \"newest_resident\": "
             << (gc.newest_resident ? "true" : "false") << "\n  },\n"
             << "  \"ok\": " << (ok ? "true" : "false") << "\n}\n";
        std::ofstream out{out_path};
        out << json.str();
        std::cout << "\nwrote " << out_path << "\n";
    }

    if (smoke && !ok) return 1;
    return 0;
}
