// Ablation harness for the design choices called out in DESIGN.md §4/§6:
//
//   A1  Embedding normalization on/off (scale-invariant Eq. 3 edges)
//   A2  Sampler uniform floor sweep (coverage vs concentration)
//   A3  Surrogate similarity threshold sweep (homophily hit volume vs
//       accuracy cost of surrogate training)
//   A4  Score refresh cadence: min_update_distance sweep (ANN maintenance
//       cost vs score staleness)
//
// Each ablation runs the full SpiderCache system on the CIFAR-10-style
// workload and reports hit ratio, accuracy, virtual time, and (for A4) the
// real ANN update counts.

#include <functional>

#include "bench_common.hpp"
#include "core/spider_cache.hpp"

namespace {

spider::metrics::RunResult run_with(
    const std::function<void(spider::sim::SimConfig&)>& tweak) {
    spider::sim::SimConfig config = spider::bench::cifar10_config();
    config.strategy = spider::sim::StrategyKind::kSpider;
    config.epochs = spider::bench::epochs(20);
    tweak(config);
    return spider::sim::TrainingSimulator{config}.run();
}

void add_row(spider::util::Table& table, const std::string& label,
             const spider::metrics::RunResult& run) {
    using spider::util::Table;
    table.add_row({label,
                   Table::fmt(run.average_hit_ratio() * 100.0, 1) + "%",
                   Table::fmt(run.tail_hit_ratio(5) * 100.0, 1) + "%",
                   Table::fmt(run.best_accuracy * 100.0, 1),
                   Table::fmt(run.total_minutes(), 2)});
}

}  // namespace

int main() {
    using namespace spider;
    bench::print_preamble("bench_ablations", "DESIGN.md §4 design choices");

    // ---- A1: embedding normalization.
    {
        util::Table table{"A1: embedding normalization (Eq. 3 edge stability)"};
        table.set_header({"Variant", "Avg hit", "Tail hit", "Top-1 (%)",
                          "Time (min)"});
        add_row(table, "normalized (default)",
                run_with([](sim::SimConfig&) {}));
        add_row(table, "raw embeddings", run_with([](sim::SimConfig& c) {
                    c.scorer.normalize_embeddings = false;
                    // Raw-embedding distances live on a larger scale; keep
                    // the same *similarity* semantics by loosening lambda.
                    c.scorer.lambda = 0.5;
                }));
        table.print(std::cout);
        std::cout << "expected: raw embeddings drift past the fixed threshold\n"
                     "as norms grow -> the graph empties and hits collapse\n\n";
    }

    // ---- A2: sampler uniform floor.
    {
        util::Table table{"A2: sampler uniform floor (coverage vs concentration)"};
        table.set_header({"floor", "Avg hit", "Tail hit", "Top-1 (%)",
                          "Time (min)"});
        for (const double floor : {0.0, 0.05, 0.2, 1.0, 4.0}) {
            add_row(table, util::Table::fmt(floor, 2),
                    run_with([floor](sim::SimConfig& c) {
                        c.spider_sampler_floor = floor;
                    }));
        }
        table.print(std::cout);
        std::cout << "expected: low floor concentrates draws (higher hits);\n"
                     "a large floor approaches uniform sampling\n\n";
    }

    // ---- A3: surrogate threshold.
    {
        util::Table table{
            "A3: surrogate similarity threshold (homophily volume)"};
        table.set_header({"surrogate_alpha", "Avg hit", "Tail hit",
                          "Top-1 (%)", "Time (min)"});
        for (const double alpha : {0.55, 0.45, 0.35, 0.25, 0.15}) {
            add_row(table, util::Table::fmt(alpha, 2),
                    run_with([alpha](sim::SimConfig& c) {
                        c.scorer.surrogate_alpha = alpha;
                    }));
        }
        table.print(std::cout);
        std::cout << "expected: looser thresholds serve more surrogates\n"
                     "(higher hits, shorter time) at growing accuracy cost\n\n";
    }

    // ---- A4: score refresh cadence via min_update_distance.
    {
        util::Table table{
            "A4: ANN refresh threshold (maintenance cost vs staleness)"};
        table.set_header({"min_update_distance", "Avg hit", "Tail hit",
                          "Top-1 (%)", "Time (min)"});
        for (const double threshold : {0.0, 0.03, 0.1, 0.3}) {
            add_row(table, util::Table::fmt(threshold, 2),
                    run_with([threshold](sim::SimConfig& c) {
                        c.scorer.min_update_distance = threshold;
                    }));
        }
        table.print(std::cout);
        std::cout << "expected: small thresholds skip re-indexing near-static\n"
                     "embeddings with no behavioural change; large ones let\n"
                     "scores go stale\n";
    }
    return 0;
}
