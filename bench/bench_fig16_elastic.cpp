// Figure 16 + Table 6 — effectiveness of the Elastic Cache Manager.
//
// Three strategies on CIFAR-10/ResNet18:
//   Imp-Ratio 90%      — static 90:10 split (elastic disabled)
//   Imp-Ratio 90%-80%  — dynamic shift to 80:20 (the default)
//   Imp-Ratio 90%-50%  — aggressive shift to 50:50
// Prints the hit-ratio trajectory (early vs late epochs), the per-section
// contributions, and the Table-6 accuracy/time summary.

#include "bench_common.hpp"

int main() {
    using namespace spider;
    bench::print_preamble("bench_fig16_elastic", "Figure 16 and Table 6");

    struct Scenario {
        const char* name;
        bool elastic;
        double r_end;
    };
    const Scenario scenarios[] = {
        {"90%", false, 0.90},
        {"90%-80%", true, 0.80},
        {"90%-50%", true, 0.50},
    };

    util::Table trajectory{
        "Fig 16(a): hit ratio over training (CIFAR-10, ResNet18)"};
    trajectory.set_header({"Imp-Ratio", "first 25% epochs", "last 25% epochs",
                           "late homophily share", "final imp-ratio"});
    util::Table summary{
        "Table 6: end-to-end under different Imp-Ratio (time scaled to paper workload)"};
    summary.set_header({"", "90%", "90%-80%", "90%-50%"});
    std::vector<std::string> acc_row = {"Top-1 Accuracy"};
    std::vector<std::string> time_row = {"Training time (min)"};

    for (const Scenario& scenario : scenarios) {
        sim::SimConfig config = bench::cifar10_config();
        config.strategy = sim::StrategyKind::kSpider;
        config.elastic_enabled = scenario.elastic;
        config.elastic.r_start = 0.90;
        config.elastic.r_end = scenario.r_end;
        const metrics::RunResult run = sim::TrainingSimulator{config}.run();

        const std::size_t quarter = std::max<std::size_t>(
            run.epochs.size() / 4, 1);
        double early = 0.0;
        double late = 0.0;
        std::uint64_t late_homo = 0;
        std::uint64_t late_hits = 0;
        for (std::size_t e = 0; e < quarter; ++e) {
            early += run.epochs[e].hit_ratio();
        }
        for (std::size_t e = run.epochs.size() - quarter;
             e < run.epochs.size(); ++e) {
            late += run.epochs[e].hit_ratio();
            late_homo += run.epochs[e].homophily_hits;
            late_hits += run.epochs[e].hits;
        }
        trajectory.add_row(
            {scenario.name,
             util::Table::fmt(early / static_cast<double>(quarter) * 100.0, 1) +
                 "%",
             util::Table::fmt(late / static_cast<double>(quarter) * 100.0, 1) +
                 "%",
             util::Table::fmt(late_hits == 0
                                  ? 0.0
                                  : 100.0 * static_cast<double>(late_homo) /
                                        static_cast<double>(late_hits),
                              1) +
                 "%",
             util::Table::fmt(run.epochs.back().imp_ratio * 100.0, 0) + "%"});
        acc_row.push_back(util::Table::fmt(run.final_accuracy * 100.0, 2));
        // Scale to the paper workload (50k samples x 100 epochs).
        const double scale_factor =
            (50'000.0 / static_cast<double>(config.dataset.num_samples)) *
            (100.0 / static_cast<double>(config.epochs));
        time_row.push_back(
            util::Table::fmt(run.total_minutes() * scale_factor, 0));
    }
    trajectory.print(std::cout);
    std::cout << "paper: static 90:10 declines late; 90-80 stays stable; "
                 "90-50 lifts late-stage hits further\n\n";

    summary.add_row(std::move(acc_row));
    summary.add_row(std::move(time_row));
    summary.print(std::cout);
    std::cout << "paper Table 6: acc 81.63 / 81.44 / 78.87, "
                 "time 165 / 125 / 109 min\n";
    return 0;
}
