// Figure 17 — per-epoch training time with 1-4 GPUs (data-parallel),
// SpiderCache vs the LRU baseline. Multi-GPU workers share the remote
// storage's fetch slots (the NFS bandwidth cap) and pay an all-reduce term
// per step, so scaling is sub-linear — more so for the I/O-bound baseline.
//
// ISSUE 2 additions: a SpiderCache+prefetch column (the lookahead
// prefetcher overlapping predicted misses with the previous step's
// compute; DESIGN.md §8.3). ISSUE 4 adds the adaptive epoch-crossing
// prefetcher column: the depth controller sizes the window from the
// observed storage-idle span and spills leftover tail budget into the
// next epoch's head, so its coverage must dominate the static column and
// its epoch >= 2 cold-start misses must drop. Flags:
//
//   --threads N    run the loader stage on N real worker threads sharing
//                  the sharded cache and capped fetch slots (0 = one per
//                  simulated GPU; default 1 = serial, bit-identical to the
//                  pre-threading simulator)
//   --prefetch     also report SpiderCache with the static prefetcher
//   --adaptive     also report the adaptive epoch-crossing prefetcher
//                  (implies --prefetch, for the baseline column)
//   --smoke        tiny deterministic run for CI: both prefetch columns
//                  on, exit non-zero unless adaptive coverage beats the
//                  static column at every GPU count

#include <cstdint>
#include <string>
#include <vector>

#include "bench_common.hpp"

namespace {

struct ColumnResult {
    double epoch_s = 0.0;
    double coverage = 0.0;
    std::uint64_t warm_cold_misses = 0;  // cold-start misses, epochs >= 1
};

}  // namespace

int main(int argc, char** argv) {
    using namespace spider;
    std::size_t threads = 1;
    bool with_prefetch = false;
    bool with_adaptive = false;
    bool smoke = false;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--threads" && i + 1 < argc) {
            threads = static_cast<std::size_t>(std::stoul(argv[++i]));
        } else if (arg == "--prefetch") {
            with_prefetch = true;
        } else if (arg == "--adaptive") {
            with_adaptive = true;
            with_prefetch = true;
        } else if (arg == "--smoke") {
            smoke = true;
            with_prefetch = true;
            with_adaptive = true;
        } else {
            std::cerr << "usage: bench_fig17_multigpu [--threads N] "
                         "[--prefetch] [--adaptive] [--smoke]\n";
            return 2;
        }
    }

    bench::print_preamble("bench_fig17_multigpu", "Figure 17");
    std::cout << "### loader threads: "
              << (threads == 0 ? std::string{"per-GPU"}
                               : std::to_string(threads));
    if (smoke) {
        std::cout << ", smoke mode";
    } else if (with_adaptive) {
        std::cout << ", prefetch + adaptive columns enabled";
    } else if (with_prefetch) {
        std::cout << ", prefetch column enabled";
    }
    std::cout << "\n\n";

    util::Table table{
        "Fig 17: per-epoch time (virtual s), CIFAR-10 / ResNet18"};
    std::vector<std::string> header = {"GPUs", "Baseline", "SpiderCache",
                                       "speedup"};
    if (with_prefetch) {
        header.insert(header.end(),
                      {"Spider+prefetch", "speedup", "coverage"});
    }
    if (with_adaptive) {
        header.insert(header.end(), {"Spider+adaptive", "speedup", "coverage",
                                     "cold@2+"});
    }
    table.set_header(std::move(header));

    // Column order per row: baseline, spider, [static prefetch],
    // [adaptive epoch-crossing prefetch].
    enum class Column { kBaseline, kSpider, kStaticPrefetch, kAdaptive };
    std::vector<Column> columns = {Column::kBaseline, Column::kSpider};
    if (with_prefetch) columns.push_back(Column::kStaticPrefetch);
    if (with_adaptive) columns.push_back(Column::kAdaptive);

    bool adaptive_dominates = true;
    for (const std::size_t gpus : {1UL, 2UL, 3UL, 4UL}) {
        double baseline_s = 0.0;
        ColumnResult stat{};
        std::vector<std::string> row = {std::to_string(gpus)};
        for (const Column column : columns) {
            sim::SimConfig config = bench::cifar10_config();
            config.strategy = column == Column::kBaseline
                                  ? sim::StrategyKind::kBaselineLru
                                  : sim::StrategyKind::kSpider;
            config.num_gpus = gpus;
            config.epochs = smoke ? 3 : bench::epochs(20);
            if (smoke) {
                config.dataset = data::cifar10_like(/*scale=*/0.02);
            }
            config.worker_threads = threads;
            config.prefetch_enabled = column == Column::kStaticPrefetch ||
                                      column == Column::kAdaptive;
            config.prefetch_adaptive = column == Column::kAdaptive;
            const metrics::RunResult run =
                sim::TrainingSimulator{config}.run();

            ColumnResult res;
            res.epoch_s = storage::to_ms(run.mean_epoch_time()) / 1000.0;
            res.coverage = run.prefetch_coverage();
            for (std::size_t e = 1; e < run.epochs.size(); ++e) {
                res.warm_cold_misses += run.epochs[e].cold_start_misses;
            }

            if (column == Column::kBaseline) baseline_s = res.epoch_s;
            if (column == Column::kStaticPrefetch) stat = res;
            row.push_back(util::Table::fmt(res.epoch_s, 2));
            if (column != Column::kBaseline) {
                row.push_back(
                    util::Table::fmt(baseline_s / res.epoch_s, 2) + "x");
            }
            if (config.prefetch_enabled) {
                row.push_back(util::Table::fmt(res.coverage * 100.0, 1) +
                              "%");
            }
            if (column == Column::kAdaptive) {
                row.push_back(std::to_string(res.warm_cold_misses));
                if (res.coverage <= stat.coverage) adaptive_dominates = false;
            }
        }
        table.add_row(std::move(row));
    }
    table.print(std::cout);
    std::cout << "paper: SpiderCache cuts per-epoch time at every GPU count;\n"
                 "scaling stays sub-linear due to communication and shared "
                 "storage bandwidth\n";
    if (with_prefetch) {
        std::cout << "prefetch: lookahead hides covered misses inside the "
                     "previous step's compute window,\nso the prefetch "
                     "column must be strictly faster wherever coverage > 0\n";
    }
    if (with_adaptive) {
        std::cout << "adaptive: the depth controller fills the whole idle "
                     "span and the epoch-crossing\ntail warms the next "
                     "epoch's first batch (cold@2+ = cold-start misses "
                     "summed over epochs >= 2)\n";
    }
    if (smoke) {
        if (!adaptive_dominates) {
            std::cerr << "SMOKE FAIL: adaptive coverage did not beat the "
                         "static column at every GPU count\n";
            return 1;
        }
        std::cout << "smoke: adaptive coverage > static coverage at every "
                     "GPU count\n";
    }
    return 0;
}
