// Figure 17 — per-epoch training time with 1-4 GPUs (data-parallel),
// SpiderCache vs the LRU baseline. Multi-GPU workers share the remote
// storage's fetch slots (the NFS bandwidth cap) and pay an all-reduce term
// per step, so scaling is sub-linear — more so for the I/O-bound baseline.
//
// ISSUE 2 additions: a SpiderCache+prefetch column (the lookahead
// prefetcher overlapping predicted misses with the previous step's
// compute; DESIGN.md §8.3) with its prefetch hit coverage, plus flags:
//
//   --threads N    run the loader stage on N real worker threads sharing
//                  the sharded cache and capped fetch slots (0 = one per
//                  simulated GPU; default 1 = serial, bit-identical to the
//                  pre-threading simulator)
//   --prefetch     also report SpiderCache with the prefetcher enabled

#include <string>

#include "bench_common.hpp"

int main(int argc, char** argv) {
    using namespace spider;
    std::size_t threads = 1;
    bool with_prefetch = false;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--threads" && i + 1 < argc) {
            threads = static_cast<std::size_t>(std::stoul(argv[++i]));
        } else if (arg == "--prefetch") {
            with_prefetch = true;
        } else {
            std::cerr
                << "usage: bench_fig17_multigpu [--threads N] [--prefetch]\n";
            return 2;
        }
    }

    bench::print_preamble("bench_fig17_multigpu", "Figure 17");
    std::cout << "### loader threads: "
              << (threads == 0 ? std::string{"per-GPU"}
                               : std::to_string(threads))
              << (with_prefetch ? ", prefetch column enabled" : "") << "\n\n";

    util::Table table{
        "Fig 17: per-epoch time (virtual s), CIFAR-10 / ResNet18"};
    std::vector<std::string> header = {"GPUs", "Baseline", "SpiderCache",
                                       "speedup"};
    if (with_prefetch) {
        header.insert(header.end(),
                      {"Spider+prefetch", "speedup", "coverage"});
    }
    table.set_header(std::move(header));

    for (const std::size_t gpus : {1UL, 2UL, 3UL, 4UL}) {
        double baseline_s = 0.0;
        std::vector<std::string> row = {std::to_string(gpus)};
        std::vector<sim::StrategyKind> strategies = {
            sim::StrategyKind::kBaselineLru, sim::StrategyKind::kSpider};
        if (with_prefetch) strategies.push_back(sim::StrategyKind::kSpider);
        for (std::size_t run_idx = 0; run_idx < strategies.size();
             ++run_idx) {
            const sim::StrategyKind strategy = strategies[run_idx];
            const bool prefetch_run = run_idx == 2;
            sim::SimConfig config = bench::cifar10_config();
            config.strategy = strategy;
            config.num_gpus = gpus;
            config.epochs = bench::epochs(20);
            config.worker_threads = threads;
            config.prefetch_enabled = prefetch_run;
            const metrics::RunResult run = sim::TrainingSimulator{config}.run();
            const double epoch_s =
                storage::to_ms(run.mean_epoch_time()) / 1000.0;
            if (run_idx == 0) baseline_s = epoch_s;
            row.push_back(util::Table::fmt(epoch_s, 2));
            if (run_idx >= 1) {
                row.push_back(util::Table::fmt(baseline_s / epoch_s, 2) + "x");
            }
            if (prefetch_run) {
                row.push_back(
                    util::Table::fmt(run.prefetch_coverage() * 100.0, 1) +
                    "%");
            }
        }
        table.add_row(std::move(row));
    }
    table.print(std::cout);
    std::cout << "paper: SpiderCache cuts per-epoch time at every GPU count;\n"
                 "scaling stays sub-linear due to communication and shared "
                 "storage bandwidth\n";
    if (with_prefetch) {
        std::cout << "prefetch: lookahead hides covered misses inside the "
                     "previous step's compute window,\nso the prefetch "
                     "column must be strictly faster wherever coverage > 0\n";
    }
    return 0;
}
