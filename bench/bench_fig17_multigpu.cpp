// Figure 17 — per-epoch training time with 1-4 GPUs (data-parallel),
// SpiderCache vs the LRU baseline. Multi-GPU workers share the remote
// storage's fetch slots (the NFS bandwidth cap) and pay an all-reduce term
// per step, so scaling is sub-linear — more so for the I/O-bound baseline.

#include "bench_common.hpp"

int main() {
    using namespace spider;
    bench::print_preamble("bench_fig17_multigpu", "Figure 17");

    util::Table table{
        "Fig 17: per-epoch time (virtual s), CIFAR-10 / ResNet18"};
    table.set_header({"GPUs", "Baseline", "SpiderCache", "speedup"});
    for (const std::size_t gpus : {1UL, 2UL, 3UL, 4UL}) {
        double baseline_s = 0.0;
        std::vector<std::string> row = {std::to_string(gpus)};
        for (const sim::StrategyKind strategy :
             {sim::StrategyKind::kBaselineLru, sim::StrategyKind::kSpider}) {
            sim::SimConfig config = bench::cifar10_config();
            config.strategy = strategy;
            config.num_gpus = gpus;
            config.epochs = bench::epochs(20);
            const metrics::RunResult run = sim::TrainingSimulator{config}.run();
            const double epoch_s =
                storage::to_ms(run.mean_epoch_time()) / 1000.0;
            if (strategy == sim::StrategyKind::kBaselineLru) {
                baseline_s = epoch_s;
            }
            row.push_back(util::Table::fmt(epoch_s, 2));
            if (strategy == sim::StrategyKind::kSpider) {
                row.push_back(util::Table::fmt(baseline_s / epoch_s, 2) + "x");
            }
        }
        table.add_row(std::move(row));
    }
    table.print(std::cout);
    std::cout << "paper: SpiderCache cuts per-epoch time at every GPU count;\n"
                 "scaling stays sub-linear due to communication and shared "
                 "storage bandwidth\n";
    return 0;
}
