// Multi-node cooperative-cache bench (DESIGN.md §11): the same skewed
// workload driven through cluster::CooperativeCache in two modes —
// cooperative (consistent-hash ownership + peer fetch) vs storage-only
// (independent per-node caches, every shared miss at remote price) — at
// N in {2, 4, 8} nodes, plus a straggler scenario at N = 4 where one
// node's serving link draws latency spikes and hedged duplicates claw
// the tail back.
//
// Headlines this pins:
//   * peer fetch beats storage-only mean miss-service time at EVERY
//     node count (the aggregate partitioned cache beats N duplicated
//     caches, and a peer hop costs ~10x less than remote storage);
//   * with a straggler, hedging recovers most of the straggler-free
//     mean (>= half of the tail inflation, with margin to spare).
//
// Prints a table and writes BENCH_multinode.json so the baseline is
// diffable across PRs. `--smoke` runs a reduced grid with hard
// assertions (exits non-zero when a headline fails), wired into ctest
// as BenchSmoke.Multinode. All costs are virtual-clock: the numbers are
// deterministic for a given seed, machine-independent.
//
// Usage: bench_multinode [--smoke] [--out BENCH_multinode.json]
//                        [--epochs E] [--accesses A]

#include <cstdint>
#include <fstream>
#include <iostream>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "cluster/cooperative_cache.hpp"
#include "data/presets.hpp"
#include "storage/remote_store.hpp"
#include "util/table.hpp"

namespace {

using spider::cluster::ClusterConfig;
using spider::cluster::ClusterCounters;
using spider::cluster::CooperativeCache;
using spider::storage::RemoteStore;
using spider::storage::RemoteStoreConfig;
using spider::storage::SimDuration;

struct CellResult {
    double mean_ms = 0.0;  ///< mean miss-service time per access
    ClusterCounters counters;
    std::uint64_t accesses = 0;
};

/// Drives `epochs` x `accesses` skewed lookups round-robin across the
/// active nodes; returns the mean virtual service cost per access.
CellResult run_workload(const spider::data::SyntheticDataset& dataset,
                        const ClusterConfig& cc, std::size_t epochs,
                        std::size_t accesses) {
    RemoteStore remote{dataset, RemoteStoreConfig{
                                    .latency_per_sample =
                                        spider::storage::from_ms(4.5),
                                    .bytes_per_ms = 1.25e6,
                                    .parallelism = 2,
                                }};
    CooperativeCache coop{dataset, remote, cc};
    const std::vector<std::uint32_t> nodes = coop.active_nodes();

    std::mt19937_64 rng{99};
    std::uniform_real_distribution<double> unit{0.0, 1.0};
    const auto n = static_cast<double>(dataset.size());

    SimDuration total{};
    std::uint64_t count = 0;
    SimDuration now{};
    for (std::size_t e = 0; e < epochs; ++e) {
        coop.begin_epoch();
        for (std::size_t i = 0; i < accesses; ++i) {
            // u^2 skew: hot head, long tail — the regime where a shared
            // partitioned cache pays off but never fully covers.
            const double u = unit(rng);
            const auto id = static_cast<std::uint32_t>(u * u * (n - 1.0));
            const std::uint32_t node = nodes[i % nodes.size()];
            const auto r = coop.service(node, id, now);
            total += r.cost;
            now += r.cost;
            ++count;
            if (i % 128 == 127) coop.on_batch_end(now);
        }
        coop.on_batch_end(now);
    }
    CellResult cell;
    cell.mean_ms = spider::storage::to_ms(total) / static_cast<double>(count);
    cell.counters = coop.counters();
    cell.accesses = count;
    return cell;
}

double pct(std::uint64_t part, std::uint64_t whole) {
    return whole == 0 ? 0.0
                      : 100.0 * static_cast<double>(part) /
                            static_cast<double>(whole);
}

}  // namespace

int main(int argc, char** argv) {
    bool smoke = false;
    std::string out_path;
    bool out_set = false;
    std::size_t epochs = 6;
    std::size_t accesses = 40000;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--smoke") {
            smoke = true;
        } else if (arg == "--out" && i + 1 < argc) {
            out_path = argv[++i];
            out_set = true;
        } else if (arg == "--epochs" && i + 1 < argc) {
            epochs = std::stoul(argv[++i]);
        } else if (arg == "--accesses" && i + 1 < argc) {
            accesses = std::stoul(argv[++i]);
        } else {
            std::cerr << "usage: bench_multinode [--smoke] [--out F]"
                         " [--epochs E] [--accesses A]\n";
            return 2;
        }
    }
    if (smoke) {
        epochs = 3;
        accesses = 8000;
    } else if (!out_set) {
        out_path = "BENCH_multinode.json";
    }

    const spider::data::SyntheticDataset dataset{
        spider::data::cifar10_like(0.08, 21)};  // 4000 samples
    const std::size_t per_node_items = dataset.size() * 12 / 100;

    const auto base = [&](std::size_t nodes) {
        ClusterConfig cc;
        cc.nodes = nodes;
        cc.node_cache_items = per_node_items;
        cc.seed = 5;
        return cc;
    };

    std::cout << "### bench_multinode — cooperative peer fetch vs "
                 "storage-only at N nodes\n"
              << "### dataset " << dataset.size() << " samples, "
              << per_node_items << " items/node shard, " << epochs
              << " epochs x " << accesses << " accesses (virtual time)\n\n";

    spider::util::Table table{"mean miss-service time per access"};
    table.set_header({"nodes", "storage-only ms", "coop ms", "speedup",
                      "local %", "peer %", "remote %"});

    std::ostringstream json;
    json << "{\n  \"scaling\": [\n";
    bool ok = true;
    bool first = true;
    for (const std::size_t n : {2UL, 4UL, 8UL}) {
        ClusterConfig storage_only = base(n);
        storage_only.peer_fetch_enabled = false;
        const CellResult so = run_workload(dataset, storage_only, epochs,
                                           accesses);
        const CellResult coop = run_workload(dataset, base(n), epochs,
                                             accesses);
        const ClusterCounters& c = coop.counters;
        const std::uint64_t remote_sourced =
            c.remote_fetches - c.peer_misses;
        table.add_row(
            {std::to_string(n), spider::util::Table::fmt(so.mean_ms, 3),
             spider::util::Table::fmt(coop.mean_ms, 3),
             spider::util::Table::fmt(so.mean_ms / coop.mean_ms, 2),
             spider::util::Table::fmt(pct(c.local_hits, coop.accesses), 1),
             spider::util::Table::fmt(
                 pct(c.peer_hits + c.peer_misses, coop.accesses), 1),
             spider::util::Table::fmt(pct(remote_sourced, coop.accesses),
                                      1)});
        if (!first) json << ",\n";
        first = false;
        json << "    {\"nodes\": " << n
             << ", \"storage_only_ms\": " << so.mean_ms
             << ", \"coop_ms\": " << coop.mean_ms
             << ", \"speedup\": " << so.mean_ms / coop.mean_ms
             << ", \"local_hits\": " << c.local_hits
             << ", \"peer_hits\": " << c.peer_hits
             << ", \"peer_misses\": " << c.peer_misses
             << ", \"remote_sourced\": " << remote_sourced
             << ", \"peer_bytes\": " << c.peer_bytes << "}";
        // Headline 1: peer fetch must win at every node count.
        if (coop.mean_ms >= so.mean_ms) {
            std::cerr << "FAIL: coop mean " << coop.mean_ms
                      << " ms did not beat storage-only " << so.mean_ms
                      << " ms at " << n << " nodes\n";
            ok = false;
        }
    }
    table.print(std::cout);

    // Straggler scenario at N = 4: node 3's serving link spikes; hedged
    // duplicates bound the tail. The trigger sits just above the nominal
    // peer exchange (~0.46 ms) so a spiked primary hedges immediately,
    // and the duplicate redraws the link weather (usually clean).
    const auto straggler = [&](bool hedge, bool spike) {
        ClusterConfig cc = base(4);
        if (spike) {
            cc.straggler_node = 3;
            cc.straggler_spike_prob = 0.4;
            cc.straggler_spike_mult = 10.0;
        }
        cc.hedge_enabled = hedge;
        cc.hedge_delay_ms = 0.6;
        return run_workload(dataset, cc, epochs, accesses);
    };
    const CellResult clean = straggler(false, false);
    const CellResult unhedged = straggler(false, true);
    const CellResult hedged = straggler(true, true);
    const double inflation = unhedged.mean_ms - clean.mean_ms;
    const double residual = hedged.mean_ms - clean.mean_ms;
    const double recovered =
        inflation > 0.0 ? 1.0 - residual / inflation : 0.0;

    spider::util::Table stable{"straggler at N=4 (node 3 spiking)"};
    stable.set_header({"scenario", "mean ms", "hedges", "hedge wins"});
    stable.add_row({"no straggler", spider::util::Table::fmt(clean.mean_ms, 3),
                    "0", "0"});
    stable.add_row({"straggler, no hedge",
                    spider::util::Table::fmt(unhedged.mean_ms, 3), "0", "0"});
    stable.add_row({"straggler, hedged",
                    spider::util::Table::fmt(hedged.mean_ms, 3),
                    std::to_string(hedged.counters.hedges),
                    std::to_string(hedged.counters.hedge_wins)});
    stable.print(std::cout);
    std::cout << "hedging recovered "
              << spider::util::Table::fmt(100.0 * recovered, 1)
              << "% of the straggler inflation\n";

    // Headline 2: hedging must claw back a large share of the straggler
    // inflation (gate at 40% for headroom; observed ~50%+, leaving the
    // hedged mean within a few percent of the straggler-free one).
    if (recovered < 0.4) {
        std::cerr << "FAIL: hedging recovered only " << 100.0 * recovered
                  << "% of the straggler inflation\n";
        ok = false;
    }

    json << "\n  ],\n  \"straggler_n4\": {"
         << "\"clean_ms\": " << clean.mean_ms
         << ", \"unhedged_ms\": " << unhedged.mean_ms
         << ", \"hedged_ms\": " << hedged.mean_ms
         << ", \"hedges\": " << hedged.counters.hedges
         << ", \"hedge_wins\": " << hedged.counters.hedge_wins
         << ", \"recovered_fraction\": " << recovered << "},\n"
         << "  \"epochs\": " << epochs
         << ",\n  \"accesses_per_epoch\": " << accesses
         << ",\n  \"dataset_samples\": " << dataset.size()
         << ",\n  \"items_per_node\": " << per_node_items << "\n}\n";
    if (!out_path.empty()) {
        std::ofstream out{out_path};
        out << json.str();
        std::cout << "wrote " << out_path << "\n";
    }

    if (!ok) return 1;
    return 0;
}
