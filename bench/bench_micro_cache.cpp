// Microbenchmarks (google-benchmark) for the cache policies and the
// scoring hot path: lookup/admit cycles per policy, the two-layer semantic
// lookup, importance-score updates, and the Savitzky-Golay smoother.

#include <benchmark/benchmark.h>

#include "cache/basic_policies.hpp"
#include "cache/importance_cache.hpp"
#include "cache/semantic_cache.hpp"
#include "util/rng.hpp"
#include "util/sg_filter.hpp"

namespace {

using namespace spider;

constexpr std::size_t kCapacity = 10'000;
constexpr std::uint32_t kKeyspace = 50'000;

template <typename Cache>
void access_cycle(Cache& cache, util::Rng& rng) {
    const auto id = static_cast<std::uint32_t>(rng.uniform_index(kKeyspace));
    if (!cache.touch(id)) {
        cache.admit(id);
    }
}

void BM_LruAccess(benchmark::State& state) {
    cache::LruCache cache{kCapacity};
    util::Rng rng{1};
    for (auto _ : state) access_cycle(cache, rng);
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LruAccess);

void BM_LfuAccess(benchmark::State& state) {
    cache::LfuCache cache{kCapacity};
    util::Rng rng{2};
    for (auto _ : state) access_cycle(cache, rng);
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LfuAccess);

void BM_FifoAccess(benchmark::State& state) {
    cache::FifoCache cache{kCapacity};
    util::Rng rng{3};
    for (auto _ : state) access_cycle(cache, rng);
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FifoAccess);

void BM_ImportanceAdmit(benchmark::State& state) {
    cache::ImportanceCache cache{kCapacity};
    util::Rng rng{4};
    for (auto _ : state) {
        const auto id = static_cast<std::uint32_t>(rng.uniform_index(kKeyspace));
        if (!cache.contains(id)) {
            cache.admit_scored(id, rng.uniform());
        }
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ImportanceAdmit);

void BM_ImportanceUpdateScore(benchmark::State& state) {
    cache::ImportanceCache cache{kCapacity};
    util::Rng rng{5};
    for (std::uint32_t i = 0; i < kCapacity; ++i) {
        cache.admit_scored(i, rng.uniform());
    }
    for (auto _ : state) {
        const auto id = static_cast<std::uint32_t>(rng.uniform_index(kCapacity));
        cache.update_score(id, rng.uniform());
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ImportanceUpdateScore);

void BM_SemanticLookup(benchmark::State& state) {
    cache::TwoLayerSemanticCache cache{kCapacity, 0.9};
    util::Rng rng{6};
    for (std::uint32_t i = 0; i < kCapacity; ++i) {
        cache.on_miss_fetched(i, rng.uniform());
    }
    // Populate the homophily section with neighbor lists.
    for (std::uint32_t k = 0; k < 500; ++k) {
        std::vector<std::uint32_t> neighbors;
        for (int j = 0; j < 16; ++j) {
            neighbors.push_back(
                static_cast<std::uint32_t>(rng.uniform_index(kKeyspace)));
        }
        cache.update_homophily(kKeyspace + k, neighbors);
    }
    for (auto _ : state) {
        benchmark::DoNotOptimize(cache.lookup(
            static_cast<std::uint32_t>(rng.uniform_index(kKeyspace))));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SemanticLookup);

void BM_SavitzkyGolaySmoothLast(benchmark::State& state) {
    const util::SavitzkyGolayFilter filter{7, 2};
    util::Rng rng{7};
    std::vector<double> series(200);
    for (double& x : series) x = rng.uniform();
    for (auto _ : state) {
        benchmark::DoNotOptimize(filter.smooth_last(series));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SavitzkyGolaySmoothLast);

void BM_AliasSamplerEpoch(benchmark::State& state) {
    const auto n = static_cast<std::size_t>(state.range(0));
    util::Rng rng{8};
    std::vector<double> weights(n);
    for (double& w : weights) w = rng.uniform() + 0.01;
    for (auto _ : state) {
        const util::AliasSampler alias{weights};
        benchmark::DoNotOptimize(alias.draw_many(rng, n));
    }
    state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_AliasSamplerEpoch)->Arg(5000)->Arg(50000);

}  // namespace

BENCHMARK_MAIN();
