// Loopback throughput/latency bench for the cache service: N concurrent
// clients drive pipelined GETs at depths 1/8/64 against an in-process
// SpiderServer, measuring ops/s, per-op p50/p99 latency, and the
// server-side batching amplification (frames serviced per drain pass).
// The headline this pins: pipelining + batching buys >= 2x ops/s over
// depth-1 at >= 8 clients — the syscall/wakeup cost dominates depth-1,
// and the gathered batch path amortizes it.
//
// Prints a table and writes BENCH_net.json so the baseline is diffable
// across PRs. `--smoke` runs a two-cell subset with a hard assertion
// (exits non-zero when pipelining does not beat depth-1), wired into
// ctest as BenchSmoke.Netbench.
//
// Usage: bench_netbench [--smoke] [--out BENCH_net.json]
//                       [--seconds S] [--clients list] [--depths list]

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <random>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "server/client.hpp"
#include "server/server.hpp"
#include "util/table.hpp"

namespace {

using Clock = std::chrono::steady_clock;
using spider::server::Client;
using spider::server::ServerConfig;
using spider::server::SpiderServer;
using spider::server::StatsReply;

constexpr std::uint32_t kIdSpace = 4096;  // == cache_items: hot after warmup

struct CellResult {
    std::size_t clients = 0;
    std::size_t depth = 0;
    double ops_per_s = 0.0;
    double p50_us = 0.0;
    double p99_us = 0.0;
    /// Server-side frames serviced per drain pass over the cell.
    double amplification = 0.0;
};

double percentile(std::vector<double>& samples, double q) {
    if (samples.empty()) return 0.0;
    const auto at = static_cast<std::ptrdiff_t>(
        q * static_cast<double>(samples.size() - 1));
    std::nth_element(samples.begin(), samples.begin() + at, samples.end());
    return samples[static_cast<std::size_t>(at)];
}

/// One cell: `clients` threads, each flushing `depth`-deep GET pipelines
/// for `seconds` of wall time. Per-op latency is batch RTT / depth.
CellResult run_cell(SpiderServer& server, std::size_t clients,
                    std::size_t depth, double seconds) {
    std::atomic<bool> go{false};
    std::atomic<bool> stop{false};
    std::atomic<std::uint64_t> total_ops{0};
    std::vector<std::vector<double>> latencies(clients);
    std::vector<std::thread> threads;
    threads.reserve(clients);

    const StatsReply before = server.stats();
    for (std::size_t t = 0; t < clients; ++t) {
        threads.emplace_back([&, t] {
            Client client;
            client.connect("127.0.0.1", server.port());
            std::mt19937 rng{static_cast<std::uint32_t>(t + 1)};
            std::uniform_int_distribution<std::uint32_t> pick{0,
                                                              kIdSpace - 1};
            auto& lat = latencies[t];
            std::uint64_t ops = 0;
            while (!go.load(std::memory_order_acquire)) {
                std::this_thread::yield();
            }
            while (!stop.load(std::memory_order_acquire)) {
                for (std::size_t d = 0; d < depth; ++d) {
                    client.queue_get(0, pick(rng), 1.0);
                }
                const auto start = Clock::now();
                const auto replies = client.flush();
                const double rtt_us =
                    std::chrono::duration<double, std::micro>(Clock::now() -
                                                              start)
                        .count();
                lat.push_back(rtt_us / static_cast<double>(depth));
                ops += replies.size();
            }
            total_ops.fetch_add(ops, std::memory_order_relaxed);
        });
    }

    const auto start = Clock::now();
    go.store(true, std::memory_order_release);
    std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
    stop.store(true, std::memory_order_release);
    for (auto& thread : threads) thread.join();
    const double elapsed =
        std::chrono::duration<double>(Clock::now() - start).count();
    const StatsReply after = server.stats();

    std::vector<double> merged;
    for (auto& lat : latencies) {
        merged.insert(merged.end(), lat.begin(), lat.end());
    }

    CellResult r;
    r.clients = clients;
    r.depth = depth;
    r.ops_per_s = static_cast<double>(total_ops.load()) / elapsed;
    r.p50_us = percentile(merged, 0.50);
    r.p99_us = percentile(merged, 0.99);
    const double frames =
        static_cast<double>(after.frames - before.frames);
    const double batches =
        static_cast<double>(after.batches - before.batches);
    r.amplification = batches > 0.0 ? frames / batches : 0.0;
    return r;
}

std::vector<std::size_t> parse_list(const std::string& text) {
    std::vector<std::size_t> out;
    std::stringstream ss{text};
    std::string item;
    while (std::getline(ss, item, ',')) {
        out.push_back(static_cast<std::size_t>(std::stoul(item)));
    }
    return out;
}

}  // namespace

int main(int argc, char** argv) {
    bool smoke = false;
    std::string out_path;
    bool out_set = false;
    double seconds = 1.0;
    std::vector<std::size_t> clients{1, 8, 64, 256};
    std::vector<std::size_t> depths{1, 8, 64};
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--smoke") {
            smoke = true;
        } else if (arg == "--out" && i + 1 < argc) {
            out_path = argv[++i];
            out_set = true;
        } else if (arg == "--seconds" && i + 1 < argc) {
            seconds = std::stod(argv[++i]);
        } else if (arg == "--clients" && i + 1 < argc) {
            clients = parse_list(argv[++i]);
        } else if (arg == "--depths" && i + 1 < argc) {
            depths = parse_list(argv[++i]);
        } else {
            std::cerr << "usage: bench_netbench [--smoke] [--out F]"
                         " [--seconds S] [--clients a,b,..]"
                         " [--depths a,b,..]\n";
            return 2;
        }
    }
    if (smoke) {
        // CI subset: one client count, the depth-1 baseline and one
        // pipelined depth. No JSON unless explicitly requested.
        clients = {8};
        depths = {1, 8};
        seconds = std::min(seconds, 0.4);
    } else if (!out_set) {
        out_path = "BENCH_net.json";
    }

    ServerConfig config;
    config.port = 0;  // ephemeral: the bench never collides with a real one
    config.cache_items = kIdSpace;
    SpiderServer server{config};
    server.start();

    // Warm the cache so the measured path is the seqlock importance hit —
    // the serving hot path, not the admission ramp.
    {
        Client warm;
        warm.connect("127.0.0.1", server.port());
        std::vector<std::uint32_t> ids(256);
        std::vector<double> scores(256, 1.0);
        for (std::uint32_t base = 0; base < kIdSpace; base += 256) {
            for (std::uint32_t i = 0; i < 256; ++i) ids[i] = base + i;
            (void)warm.mget(0, ids, scores);
        }
    }

    std::cout << "### bench_netbench — pipelined loopback clients vs the "
                 "cache service\n"
              << "### hardware threads: "
              << std::thread::hardware_concurrency()
              << ", cache items: " << kIdSpace << ", seconds/cell: "
              << seconds << "\n\n";

    spider::util::Table table{"pipelined GETs over loopback"};
    table.set_header({"clients", "depth", "Kops/s", "p50 us", "p99 us",
                      "amplification", "vs depth-1"});

    std::ostringstream json;
    json << "{\n  \"rows\": [\n";
    bool first = true;
    bool smoke_ok = true;
    for (const std::size_t n : clients) {
        double depth1_ops = 0.0;
        for (const std::size_t depth : depths) {
            const CellResult r = run_cell(server, n, depth, seconds);
            if (depth == 1) depth1_ops = r.ops_per_s;
            const double speedup =
                depth1_ops > 0.0 ? r.ops_per_s / depth1_ops : 0.0;
            table.add_row({std::to_string(n), std::to_string(depth),
                           spider::util::Table::fmt(r.ops_per_s / 1e3, 1),
                           spider::util::Table::fmt(r.p50_us, 1),
                           spider::util::Table::fmt(r.p99_us, 1),
                           spider::util::Table::fmt(r.amplification, 2),
                           spider::util::Table::fmt(speedup, 2)});
            if (!first) json << ",\n";
            first = false;
            json << "    {\"clients\": " << n << ", \"depth\": " << depth
                 << ", \"ops_per_s\": " << r.ops_per_s
                 << ", \"p50_us\": " << r.p50_us
                 << ", \"p99_us\": " << r.p99_us
                 << ", \"amplification\": " << r.amplification
                 << ", \"speedup_vs_depth1\": " << speedup << "}";
            // The headline: at >= 8 clients, pipelining+batching must buy
            // >= 2x over depth-1 (the smoke gate uses 1.5x headroom for
            // noisy CI boxes).
            if (smoke && n >= 8 && depth >= 8 && speedup < 1.5) {
                smoke_ok = false;
            }
        }
    }
    table.print(std::cout);

    const StatsReply stats = server.stats();
    std::cout << "served " << stats.frames << " frames in " << stats.batches
              << " batches; max batch " << stats.max_batch
              << "; bytes in/out " << stats.bytes_in << "/"
              << stats.bytes_out << "\n";
    server.stop();

    json << "\n  ],\n  \"hardware_threads\": "
         << std::thread::hardware_concurrency()
         << ",\n  \"seconds_per_cell\": " << seconds
         << ",\n  \"cache_items\": " << kIdSpace << "\n}\n";
    if (!out_path.empty()) {
        std::ofstream out{out_path};
        out << json.str();
        std::cout << "wrote " << out_path << "\n";
    }

    if (smoke && !smoke_ok) {
        std::cerr << "SMOKE FAIL: pipelined depth did not reach 1.5x the "
                     "depth-1 ops/s at 8 clients\n";
        return 1;
    }
    return 0;
}
