// Before/after microbench for the vectorized hot path (ISSUE 1):
//
//   - squared_l2 at ANN-relevant dims      -> GB/s   (scalar vs dispatched)
//   - GEMM at training-loop shapes          -> GFLOP/s (scalar vs dispatched)
//   - graph-IS batch scoring                -> samples/s (serial vs
//     score_batch over a thread pool, --threads N)
//
// Prints human-readable tables and writes BENCH_kernels.json (path
// overridable as argv) so perf baselines are diffable across PRs.
//
// Usage: bench_micro_kernels [--threads N] [--out BENCH_kernels.json]

#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "ann/hnsw.hpp"
#include "core/graph_scorer.hpp"
#include "tensor/matrix.hpp"
#include "tensor/ops.hpp"
#include "tensor/simd.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace spider;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
    return std::chrono::duration<double>(Clock::now() - start).count();
}

/// Runs `body` enough times to pass ~80ms of wall clock and returns the
/// per-iteration time in seconds (median-free but warm: one calibration
/// pass then one timed pass).
template <typename F>
double time_per_iter(F&& body) {
    // Calibrate iteration count.
    std::size_t iters = 1;
    for (;;) {
        const auto start = Clock::now();
        for (std::size_t i = 0; i < iters; ++i) body();
        const double elapsed = seconds_since(start);
        if (elapsed > 0.02 || iters > (1ULL << 30)) break;
        iters *= 8;
    }
    // Timed pass at ~4x the calibrated count.
    iters *= 4;
    const auto start = Clock::now();
    for (std::size_t i = 0; i < iters; ++i) body();
    return seconds_since(start) / static_cast<double>(iters);
}

struct JsonWriter {
    std::ostringstream out;
    bool first_section = true;

    void open() { out << "{\n"; }
    void section(const std::string& name) {
        if (!first_section) out << ",\n";
        first_section = false;
        out << "  \"" << name << "\": [\n";
    }
    void close_section() { out << "\n  ]"; }
    void close(const std::string& isa, std::size_t threads) {
        out << ",\n  \"isa\": \"" << isa << "\",\n  \"threads\": " << threads
            << "\n}\n";
    }
};

std::vector<float> random_vec(util::Rng& rng, std::size_t n) {
    std::vector<float> v(n);
    for (float& x : v) x = static_cast<float>(rng.normal());
    return v;
}

}  // namespace

int main(int argc, char** argv) {
    std::size_t threads = 8;
    std::string out_path = "BENCH_kernels.json";
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--threads" && i + 1 < argc) {
            threads = static_cast<std::size_t>(std::stoul(argv[++i]));
        } else if (arg == "--out" && i + 1 < argc) {
            out_path = argv[++i];
        } else {
            std::cerr << "usage: bench_micro_kernels [--threads N] [--out F]\n";
            return 2;
        }
    }

    const char* isa = tensor::simd::active_kernels().name;
    std::cout << "### bench_micro_kernels — vectorized hot-path baseline\n"
              << "### dispatched ISA: " << isa << ", scoring threads: "
              << threads << "\n\n";

    JsonWriter json;
    json.open();

    // ---- squared_l2: GB/s over both input vectors.
    util::Table dist_table{"squared_l2 throughput (scalar vs dispatched)"};
    dist_table.set_header(
        {"dim", "scalar GB/s", "simd GB/s", "speedup"});
    json.section("squared_l2");
    bool first = true;
    util::Rng rng{2025};
    for (const std::size_t dim : {32UL, 64UL, 128UL, 256UL}) {
        const std::vector<float> a = random_vec(rng, dim);
        const std::vector<float> b = random_vec(rng, dim);
        // volatile sink defeats dead-code elimination across iterations.
        volatile float sink = 0.0F;
        const double t_scalar = time_per_iter(
            [&] { sink = sink + tensor::squared_l2_scalar(a, b); });
        const double t_simd =
            time_per_iter([&] { sink = sink + tensor::squared_l2(a, b); });
        const double bytes = 2.0 * static_cast<double>(dim) * sizeof(float);
        const double gbps_scalar = bytes / t_scalar / 1e9;
        const double gbps_simd = bytes / t_simd / 1e9;
        const double speedup = t_scalar / t_simd;
        dist_table.add_row({std::to_string(dim),
                            util::Table::fmt(gbps_scalar, 2),
                            util::Table::fmt(gbps_simd, 2),
                            util::Table::fmt(speedup, 2)});
        if (!first) json.out << ",\n";
        first = false;
        json.out << "    {\"dim\": " << dim << ", \"scalar_gbps\": "
                 << gbps_scalar << ", \"simd_gbps\": " << gbps_simd
                 << ", \"speedup\": " << speedup << "}";
    }
    json.close_section();
    dist_table.print(std::cout);

    // ---- GEMM: GFLOP/s at the shapes the MLP training loop issues
    // (batch x hidden forward, gradient transposes) plus a square stress.
    util::Table gemm_table{"GEMM throughput (scalar vs dispatched)"};
    gemm_table.set_header(
        {"shape (m*k*n)", "op", "scalar GFLOP/s", "simd GFLOP/s", "speedup"});
    json.section("gemm");
    first = true;
    struct Shape {
        std::size_t m, k, n;
        const char* op;
    };
    const Shape shapes[] = {{128, 64, 64, "a@b"},
                            {128, 128, 10, "a@b"},
                            {64, 128, 128, "atb"},
                            {256, 256, 256, "a@b"}};
    for (const Shape& s : shapes) {
        util::Rng grng{s.m * 31 + s.n};
        tensor::Matrix a{s.m, s.k};
        tensor::Matrix b{s.k, s.n};
        a.randomize_normal(grng, 0.0F, 1.0F);
        b.randomize_normal(grng, 0.0F, 1.0F);
        tensor::Matrix out;
        const bool atb = std::string{s.op} == "atb";
        // For a^T@b the left operand is [k, m]; reuse a with swapped dims.
        tensor::Matrix at{s.k, s.m};
        at.randomize_normal(grng, 0.0F, 1.0F);
        const double t_scalar = time_per_iter([&] {
            if (atb) {
                tensor::matmul_at_b_scalar(at, b, out);
            } else {
                tensor::matmul_scalar(a, b, out);
            }
        });
        const double t_simd = time_per_iter([&] {
            if (atb) {
                tensor::matmul_at_b(at, b, out);
            } else {
                tensor::matmul(a, b, out);
            }
        });
        const double flops = 2.0 * static_cast<double>(s.m) *
                             static_cast<double>(s.k) *
                             static_cast<double>(s.n);
        const double gf_scalar = flops / t_scalar / 1e9;
        const double gf_simd = flops / t_simd / 1e9;
        const double speedup = t_scalar / t_simd;
        std::ostringstream shape_str;
        shape_str << s.m << "x" << s.k << "x" << s.n;
        gemm_table.add_row({shape_str.str(), s.op,
                            util::Table::fmt(gf_scalar, 2),
                            util::Table::fmt(gf_simd, 2),
                            util::Table::fmt(speedup, 2)});
        if (!first) json.out << ",\n";
        first = false;
        json.out << "    {\"m\": " << s.m << ", \"k\": " << s.k
                 << ", \"n\": " << s.n << ", \"op\": \"" << s.op
                 << "\", \"scalar_gflops\": " << gf_scalar
                 << ", \"simd_gflops\": " << gf_simd
                 << ", \"speedup\": " << speedup << "}";
    }
    json.close_section();
    gemm_table.print(std::cout);

    // ---- Batch scoring: samples/s, serial vs score_batch over a pool.
    util::Table score_table{"graph-IS batch scoring (serial vs parallel)"};
    score_table.set_header({"dim", "serial samples/s", "parallel samples/s",
                            "speedup", "threads"});
    json.section("scoring");
    first = true;
    for (const std::size_t dim : {32UL, 64UL}) {
        ann::HnswConfig ann_config;
        ann_config.dim = dim;
        ann::HnswIndex index{ann_config};
        core::ScorerConfig scorer_config;
        core::GraphImportanceScorer scorer{
            index, scorer_config, [](std::uint32_t id) { return id % 10; }};
        util::Rng srng{dim};
        const std::size_t population = 2000;
        std::vector<float> embedding(dim);
        for (std::uint32_t id = 0; id < population; ++id) {
            const double center = static_cast<double>(id % 10);
            for (float& x : embedding) {
                x = static_cast<float>(srng.normal(center, 1.0));
            }
            scorer.update_embedding(id, embedding);
        }
        std::vector<std::uint32_t> batch(512);
        for (std::uint32_t i = 0; i < batch.size(); ++i) {
            batch[i] = i % population;
        }
        const double t_serial = time_per_iter(
            [&] { (void)scorer.score_batch(batch, nullptr); });
        util::ThreadPool pool{threads};
        const double t_parallel =
            time_per_iter([&] { (void)scorer.score_batch(batch, &pool); });
        const double sps_serial = static_cast<double>(batch.size()) / t_serial;
        const double sps_parallel =
            static_cast<double>(batch.size()) / t_parallel;
        const double speedup = t_serial / t_parallel;
        score_table.add_row({std::to_string(dim),
                             util::Table::fmt(sps_serial, 0),
                             util::Table::fmt(sps_parallel, 0),
                             util::Table::fmt(speedup, 2),
                             std::to_string(threads)});
        if (!first) json.out << ",\n";
        first = false;
        json.out << "    {\"dim\": " << dim << ", \"serial_samples_per_s\": "
                 << sps_serial << ", \"parallel_samples_per_s\": "
                 << sps_parallel << ", \"speedup\": " << speedup << "}";
    }
    json.close_section();
    score_table.print(std::cout);

    json.close(isa, threads);
    std::ofstream out_file{out_path};
    out_file << json.out.str();
    if (!out_file) {
        std::cerr << "warning: could not write " << out_path << "\n";
        return 1;
    }
    std::cout << "\nwrote " << out_path << "\n";
    return 0;
}
