// Figure 13 + Table 3 — effectiveness of the IS algorithms alone.
//
// All systems run with their cache policies disabled (cache_fraction = 0)
// so only the *sampling* strategy differs: SpiderCache's graph-based IS,
// SHADE's loss-rank IS, iCache's compute-bound IS, and CoorDL's random
// sampling. Prints the accuracy/loss trajectories (figure series) and the
// Top-1 table.

#include "bench_common.hpp"

namespace {

void run_dataset(const char* label, spider::sim::SimConfig base,
                 std::size_t epoch_multiplier, spider::util::Table& top1) {
    using namespace spider;
    base.cache_fraction = 0.0;  // caches off: pure sampler comparison
    // Finer tasks (100 classes) need a longer budget to reach the paper's
    // relative convergence level.
    base.epochs = spider::bench::epochs_accuracy() * epoch_multiplier;

    util::Table curves{std::string{"Fig 13 ("} + label +
                       "): accuracy / loss over training"};
    curves.set_header({"System", "Acc @25%", "Acc @50%", "Acc @100%",
                       "Loss @25%", "Loss @100%"});
    std::vector<std::string> row = {label};
    for (const sim::StrategyKind strategy :
         {sim::StrategyKind::kSpider, sim::StrategyKind::kShade,
          sim::StrategyKind::kICache, sim::StrategyKind::kCoorDL}) {
        sim::SimConfig config = base;
        config.strategy = strategy;
        const metrics::RunResult run = sim::TrainingSimulator{config}.run();
        const auto at = [&](double fraction) -> const metrics::EpochMetrics& {
            const std::size_t idx = std::min(
                run.epochs.size() - 1,
                static_cast<std::size_t>(fraction *
                                         static_cast<double>(run.epochs.size())));
            return run.epochs[idx];
        };
        curves.add_row({run.strategy,
                        util::Table::fmt(at(0.25).test_accuracy * 100.0, 1),
                        util::Table::fmt(at(0.5).test_accuracy * 100.0, 1),
                        util::Table::fmt(run.final_accuracy * 100.0, 1),
                        util::Table::fmt(at(0.25).train_loss, 3),
                        util::Table::fmt(run.epochs.back().train_loss, 3)});
        row.push_back(util::Table::fmt(run.best_accuracy * 100.0, 1));
    }
    curves.print(std::cout);
    std::cout << "\n";
    top1.add_row(std::move(row));
}

}  // namespace

int main() {
    using namespace spider;
    bench::print_preamble("bench_fig13_is_comparison", "Figure 13 and Table 3");

    util::Table top1{"Table 3: Top-1 accuracy (%), cache policies disabled"};
    top1.set_header({"Dataset", "SpiderCache", "SHADE", "iCache", "CoorDL"});

    run_dataset("CIFAR-10", bench::cifar10_config(), 1, top1);
    run_dataset("CIFAR-100", bench::cifar100_config(), 2, top1);
    run_dataset("ImageNet", bench::imagenet_config(), 2, top1);

    top1.print(std::cout);
    std::cout << "paper Table 3: C10 81.8/80.6/78.9/78.4, "
                 "C100 45.7/44.2/39.8/42.0, IN 75.2/74.5/70.6/74.9\n";
    return 0;
}
