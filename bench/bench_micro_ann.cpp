// Microbenchmarks (google-benchmark) for the ANN substrate: HNSW insert,
// search and in-place update across index sizes and embedding dimensions,
// brute-force comparison, PQ train/encode/ADC.

#include <benchmark/benchmark.h>

#include "ann/bruteforce.hpp"
#include "ann/hnsw.hpp"
#include "ann/pq.hpp"
#include "util/rng.hpp"

namespace {

using namespace spider;

std::vector<float> random_point(util::Rng& rng, std::size_t dim) {
    std::vector<float> p(dim);
    for (float& x : p) {
        x = static_cast<float>(rng.normal(static_cast<double>(rng.uniform_index(8)), 1.0));
    }
    return p;
}

ann::HnswIndex build_index(std::size_t n, std::size_t dim) {
    ann::HnswConfig config;
    config.dim = dim;
    ann::HnswIndex index{config};
    util::Rng rng{n * 31 + dim};
    for (std::uint32_t i = 0; i < n; ++i) {
        index.upsert(i, random_point(rng, dim));
    }
    return index;
}

void BM_HnswInsert(benchmark::State& state) {
    const auto dim = static_cast<std::size_t>(state.range(0));
    ann::HnswConfig config;
    config.dim = dim;
    ann::HnswIndex index{config};
    util::Rng rng{7};
    std::uint32_t next_id = 0;
    for (auto _ : state) {
        index.upsert(next_id++, random_point(rng, dim));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HnswInsert)->Arg(32)->Arg(64)->Arg(128);

void BM_HnswSearch(benchmark::State& state) {
    const auto n = static_cast<std::size_t>(state.range(0));
    const std::size_t dim = 32;
    const ann::HnswIndex index = build_index(n, dim);
    util::Rng rng{11};
    const std::vector<float> query = random_point(rng, dim);
    for (auto _ : state) {
        benchmark::DoNotOptimize(index.knn(query, 10));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HnswSearch)->Arg(1000)->Arg(5000)->Arg(20000);

void BM_HnswUpdate(benchmark::State& state) {
    const std::size_t n = static_cast<std::size_t>(state.range(0));
    const std::size_t dim = 32;
    ann::HnswIndex index = build_index(n, dim);
    util::Rng rng{13};
    std::uint32_t id = 0;
    for (auto _ : state) {
        index.upsert(id, random_point(rng, dim));
        id = (id + 1) % static_cast<std::uint32_t>(n);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HnswUpdate)->Arg(1000)->Arg(5000);

// Threaded axis: the scoring phase issues knn from many threads against a
// fixed graph (hnsw.hpp phase contract). gbench's --benchmark_filter can
// pin one thread count; the registered range sweeps 1..8.
void BM_HnswSearchConcurrent(benchmark::State& state) {
    static const ann::HnswIndex index = build_index(5000, 32);
    util::Rng rng{100 + static_cast<std::uint64_t>(state.thread_index())};
    const std::vector<float> query = random_point(rng, 32);
    for (auto _ : state) {
        benchmark::DoNotOptimize(index.knn(query, 10));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HnswSearchConcurrent)->ThreadRange(1, 8)->UseRealTime();

void BM_BruteForceSearch(benchmark::State& state) {
    const auto n = static_cast<std::size_t>(state.range(0));
    const std::size_t dim = 32;
    ann::BruteForceIndex index{dim};
    util::Rng rng{17};
    for (std::uint32_t i = 0; i < n; ++i) {
        index.upsert(i, random_point(rng, dim));
    }
    const std::vector<float> query = random_point(rng, dim);
    for (auto _ : state) {
        benchmark::DoNotOptimize(index.knn(query, 10));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BruteForceSearch)->Arg(1000)->Arg(5000)->Arg(20000);

void BM_PqEncode(benchmark::State& state) {
    const std::size_t dim = 64;
    ann::PqConfig config;
    config.dim = dim;
    config.num_subspaces = 16;
    ann::ProductQuantizer pq{config};
    util::Rng rng{19};
    const std::size_t n = 2000;
    std::vector<float> data(n * dim);
    for (float& x : data) x = static_cast<float>(rng.normal());
    pq.train(data, n);
    const std::span<const float> vec{data.data(), dim};
    for (auto _ : state) {
        benchmark::DoNotOptimize(pq.encode(vec));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PqEncode);

void BM_PqAdcDistanceWithTable(benchmark::State& state) {
    const std::size_t dim = 64;
    ann::PqConfig config;
    config.dim = dim;
    config.num_subspaces = 16;
    ann::ProductQuantizer pq{config};
    util::Rng rng{23};
    const std::size_t n = 2000;
    std::vector<float> data(n * dim);
    for (float& x : data) x = static_cast<float>(rng.normal());
    pq.train(data, n);
    const std::span<const float> query{data.data(), dim};
    const auto code = pq.encode(std::span<const float>{data.data() + dim, dim});
    const auto table = pq.build_distance_table(query);
    for (auto _ : state) {
        benchmark::DoNotOptimize(pq.table_distance(table, code));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PqAdcDistanceWithTable);

}  // namespace

BENCHMARK_MAIN();
