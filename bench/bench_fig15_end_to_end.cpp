// Figure 15 + Tables 4 and 5 — end-to-end comparison: total training time
// and final Top-1 accuracy for SpiderCache, SHADE, iCache, CoorDL, and the
// LRU baseline, at a 20% cache over the full epoch budget, with every
// system's complete cache policy enabled (imp-ratio 90% -> 80% elastic for
// SpiderCache, as in the paper).

#include "bench_common.hpp"

namespace {

void run_dataset(const char* label, spider::sim::SimConfig base,
                 bool report_hours, double paper_samples,
                 std::size_t epoch_multiplier,
                 spider::util::Table& time_table,
                 spider::util::Table& acc_table) {
    using namespace spider;
    base.epochs = bench::epochs_accuracy() * epoch_multiplier;
    // Scale virtual time to the paper's workload size: the paper trains
    // 100 epochs over the full dataset; we train a reduced budget over a
    // `scale`-reduced one. Per-sample-per-epoch cost is scale-free.
    const double scale_factor =
        (paper_samples / static_cast<double>(base.dataset.num_samples)) *
        (100.0 / static_cast<double>(base.epochs));
    std::vector<std::string> time_row = {
        std::string{label} + (report_hours ? " (hour)" : " (min)")};
    std::vector<std::string> acc_row = {label};
    double spider_minutes = 0.0;
    double baseline_minutes = 0.0;
    for (const sim::StrategyKind strategy :
         {sim::StrategyKind::kSpider, sim::StrategyKind::kShade,
          sim::StrategyKind::kICache, sim::StrategyKind::kCoorDL,
          sim::StrategyKind::kBaselineLru}) {
        sim::SimConfig config = base;
        config.strategy = strategy;
        config.cache_fraction = 0.20;
                const metrics::RunResult run = sim::TrainingSimulator{config}.run();
        const double minutes = run.total_minutes();
        if (strategy == sim::StrategyKind::kSpider) spider_minutes = minutes;
        if (strategy == sim::StrategyKind::kBaselineLru) {
            baseline_minutes = minutes;
        }
        const double scaled_minutes = minutes * scale_factor;
        time_row.push_back(util::Table::fmt(
            report_hours ? scaled_minutes / 60.0 : scaled_minutes, 0));
        acc_row.push_back(util::Table::fmt(run.best_accuracy * 100.0, 1));
        std::cout << "  " << label << " / " << run.strategy << ": time="
                  << util::Table::fmt(minutes, 1) << " min, hit="
                  << util::Table::fmt(run.average_hit_ratio() * 100.0, 1)
                  << "%, top1="
                  << util::Table::fmt(run.best_accuracy * 100.0, 1) << "%\n";
    }
    std::cout << "  " << label << " speedup SpiderCache vs Baseline: "
              << util::Table::fmt(baseline_minutes / spider_minutes, 2)
              << "x\n";
    time_table.add_row(std::move(time_row));
    acc_table.add_row(std::move(acc_row));
}

}  // namespace

int main() {
    using namespace spider;
    bench::print_preamble("bench_fig15_end_to_end",
                          "Figure 15, Table 4, Table 5");

    util::Table time_table{
        "Table 4: total training time (virtual, scaled to paper workload)"};
    time_table.set_header(
        {"Dataset", "SpiderCache", "SHADE", "iCache", "CoorDL", "Baseline"});
    util::Table acc_table{"Table 5: end-to-end Top-1 accuracy (%)"};
    acc_table.set_header(
        {"Dataset", "SpiderCache", "SHADE", "iCache", "CoorDL", "Baseline"});

    run_dataset("CIFAR-10", bench::cifar10_config(), false, 50'000.0, 1,
                time_table, acc_table);
    run_dataset("CIFAR-100", bench::cifar100_config(), false, 50'000.0, 2,
                time_table, acc_table);
    run_dataset("ImageNet", bench::imagenet_config(), true, 1'200'000.0, 2,
                time_table, acc_table);

    std::cout << "\n";
    time_table.print(std::cout);
    std::cout << "paper Table 4 (min/h): C10 122/171/160/199/284, "
                 "C100 142/199/175/213/314, IN 288/380/361/429/611\n\n";
    acc_table.print(std::cout);
    std::cout << "paper Table 5: C10 81.4/80.6/72.8/78.4/78.3, "
                 "C100 45.0/44.2/37.7/42.2/42.0, IN 75.1/74.3/67.5/74.4/74.3\n";
    return 0;
}
