// Table 1 + Figure 12 — overhead analysis and pipelining.
//
// Table 1 reports per-mini-batch times for Stage1 (load+forward), Stage2
// (backward+optimize) and the graph-IS stage; Figure 12 shows the pipeline
// that hides IS behind Stage2 (short-IS models) or Stage2 + next Stage1
// (AlexNet/VGG16). This bench prints the Table-1 rows from the calibrated
// cost model, derives the pipelined per-batch time for both schedules, and
// also *measures* the real wall-clock cost of the graph-IS stage (HNSW
// update + Eq. 4 scoring) per mini-batch on this machine.

#include <chrono>
#include <memory>
#include <string>

#include "bench_common.hpp"
#include "core/graph_scorer.hpp"
#include "core/pipeline.hpp"
#include "util/thread_pool.hpp"

int main(int argc, char** argv) {
    using namespace spider;
    // --threads N: fan the measured scoring half across a pool, showing
    // how much of the IS stage batch-parallel scoring removes.
    std::size_t threads = 1;
    for (int i = 1; i < argc; ++i) {
        if (std::string{argv[i]} == "--threads" && i + 1 < argc) {
            threads = static_cast<std::size_t>(std::stoul(argv[++i]));
        }
    }
    bench::print_preamble("bench_table1_overhead", "Table 1 and Figure 12");

    util::Table table{"Table 1: per-mini-batch stage times (virtual ms)"};
    table.set_header({"Model", "Stage1", "Stage2", "IS", "serial batch",
                      "pipelined batch", "IS hidden?"});
    for (const nn::ModelProfile& model : nn::evaluated_profiles()) {
        const double stage1 = model.table1_stage1_ms;
        const auto serial = core::pipelined_batch_time(
            stage1, model.backward_ms, model.is_ms, model.long_is_pipeline,
            true, false);
        const auto pipelined = core::pipelined_batch_time(
            stage1, model.backward_ms, model.is_ms, model.long_is_pipeline,
            true, true);
        const auto no_is = core::pipelined_batch_time(
            stage1, model.backward_ms, model.is_ms, model.long_is_pipeline,
            false, true);
        table.add_row({model.name, util::Table::fmt(stage1, 0),
                       util::Table::fmt(model.backward_ms, 0),
                       util::Table::fmt(model.is_ms, 0),
                       util::Table::fmt(storage::to_ms(serial), 0),
                       util::Table::fmt(storage::to_ms(pipelined), 0),
                       pipelined <= no_is ? "yes (fully)" : "partially"});
    }
    table.print(std::cout);
    std::cout << "paper Table 1: ResNet18 42/35/16, ResNet50 48/37/18, "
                 "AlexNet 62/33/35, Vgg16 56/28/31 ms\n"
                 "paper Fig 12: pipelining hides the IS stage entirely\n\n";

    // ---- Measured: real graph-IS stage cost per 128-sample mini-batch as
    // a function of embedding dimension (the paper: HNSW runtime is driven
    // by embedding dimension, not index size).
    util::Table measured{"Measured graph-IS stage cost on this machine"};
    measured.set_header({"Embedding dim", "batch update+score (wall ms)",
                         "per sample (us)", "threads"});
    std::unique_ptr<util::ThreadPool> pool;
    if (threads > 1) pool = std::make_unique<util::ThreadPool>(threads);
    for (const std::size_t dim : {32UL, 64UL, 128UL, 256UL}) {
        ann::HnswConfig ann_config;
        ann_config.dim = dim;
        ann::HnswIndex index{ann_config};
        core::ScorerConfig scorer_config;
        core::GraphImportanceScorer scorer{
            index, scorer_config, [](std::uint32_t id) { return id % 10; }};

        util::Rng rng{dim};
        const std::size_t population = 2000;
        std::vector<float> embedding(dim);
        auto fill = [&](std::uint32_t id) {
            const double center = static_cast<double>(id % 10);
            for (float& x : embedding) {
                x = static_cast<float>(rng.normal(center, 1.0));
            }
        };
        for (std::uint32_t id = 0; id < population; ++id) {
            fill(id);
            scorer.update_embedding(id, embedding);
        }
        // Timed: one mini-batch of 128 updates + scores (steady state).
        // Updates stay serial (writer phase); scoring fans across the pool
        // when --threads > 1 (reader phase), mirroring observe_batch.
        const auto start = std::chrono::steady_clock::now();
        const int batches = 4;
        std::vector<std::uint32_t> batch_ids(128);
        for (int b = 0; b < batches; ++b) {
            for (std::uint32_t i = 0; i < 128; ++i) {
                const std::uint32_t id = (b * 128 + i) % population;
                fill(id);
                scorer.update_embedding(id, embedding);
                batch_ids[i] = id;
            }
            (void)scorer.score_batch(batch_ids, pool.get());
        }
        const double ms =
            std::chrono::duration<double, std::milli>(
                std::chrono::steady_clock::now() - start)
                .count() /
            batches;
        measured.add_row({std::to_string(dim), util::Table::fmt(ms, 1),
                          util::Table::fmt(ms * 1000.0 / 128.0, 1),
                          std::to_string(threads)});
    }
    measured.print(std::cout);
    std::cout << "paper: IS cost grows with embedding dimension "
                 "(AlexNet/VGG16 largest)\n"
                 "rerun with --threads N to see the scoring half shrink "
                 "with batch-parallel knn\n";
    return 0;
}
