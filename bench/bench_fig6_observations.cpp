// Figure 6 — training observations over the full run:
//  (a) Per-epoch mean training loss trajectory: losses shift by orders of
//      magnitude over training, which is why raw-loss importance scores
//      are not comparable across epochs (Motivation 1).
//  (b) Accuracy trajectories: iCache's random substitution costs accuracy
//      relative to the other systems (Motivation 2).
//  (c) Std-dev of importance scores rises early and then converges
//      (Motivation 3 — the trigger for the Elastic Cache Manager).

#include <algorithm>

#include "bench_common.hpp"

int main() {
    using namespace spider;
    bench::print_preamble("bench_fig6_observations", "Figure 6(a)-(c)");

    const std::size_t n_epochs = bench::epochs(40);

    // ---- (a)+(c): SpiderCache run provides loss and score-spread series.
    sim::SimConfig spider_config = bench::cifar10_config();
    spider_config.strategy = sim::StrategyKind::kSpider;
    spider_config.epochs = n_epochs;
    const metrics::RunResult spider_run =
        sim::TrainingSimulator{spider_config}.run();

    util::Table loss_table{"Fig 6(a): training loss over epochs (SpiderCache run)"};
    loss_table.set_header({"Epoch", "Mean loss", "vs epoch-1 loss"});
    const double first_loss = spider_run.epochs.front().train_loss;
    for (std::size_t e = 0; e < spider_run.epochs.size();
         e += std::max<std::size_t>(n_epochs / 8, 1)) {
        const auto& em = spider_run.epochs[e];
        loss_table.add_row({std::to_string(e + 1),
                            util::Table::fmt(em.train_loss, 3),
                            util::Table::fmt(em.train_loss / first_loss, 2) + "x"});
    }
    loss_table.print(std::cout);
    std::cout << "paper: loss varies strongly over time -> raw loss scores are\n"
                 "not comparable across broader training periods\n\n";

    // ---- (c) score spread: rises then falls.
    util::Table std_table{"Fig 6(c): stddev of importance scores over epochs"};
    std_table.set_header({"Epoch", "score stddev"});
    std::size_t peak_epoch = 0;
    double peak = 0.0;
    for (std::size_t e = 0; e < spider_run.epochs.size(); ++e) {
        if (spider_run.epochs[e].score_std > peak) {
            peak = spider_run.epochs[e].score_std;
            peak_epoch = e;
        }
    }
    for (std::size_t e = 0; e < spider_run.epochs.size();
         e += std::max<std::size_t>(n_epochs / 8, 1)) {
        std_table.add_row(
            {std::to_string(e + 1),
             util::Table::fmt(spider_run.epochs[e].score_std, 4)});
    }
    std_table.print(std::cout);
    std::cout << "measured peak at epoch " << (peak_epoch + 1) << " of "
              << n_epochs
              << "  (paper: spread first increases, then converges)\n\n";

    // ---- (b): accuracy trajectories across systems.
    util::Table acc_table{"Fig 6(b): Top-1 accuracy by system (%)"};
    acc_table.set_header({"System", "Best", "Final"});
    for (const sim::StrategyKind strategy :
         {sim::StrategyKind::kSpider, sim::StrategyKind::kShade,
          sim::StrategyKind::kICache, sim::StrategyKind::kBaselineLru}) {
        sim::SimConfig config = bench::cifar10_config();
        config.strategy = strategy;
        config.epochs = bench::epochs_accuracy();
        const metrics::RunResult run = sim::TrainingSimulator{config}.run();
        acc_table.add_row({run.strategy,
                           util::Table::fmt(run.best_accuracy * 100.0, 1),
                           util::Table::fmt(run.final_accuracy * 100.0, 1)});
    }
    acc_table.print(std::cout);
    std::cout << "paper: iCache's random replacement degrades final accuracy\n";
    return 0;
}
