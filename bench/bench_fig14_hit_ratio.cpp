// Figure 14 — average per-epoch cache hit ratio across four models on
// CIFAR-10 under cache sizes of 10/25/50/75% of the dataset, for seven
// policies: Baseline (LRU), CoorDL, SHADE, iCache-imp, iCache,
// SpiderCache-imp, SpiderCache. Also prints each policy's improvement
// factor over the LRU baseline (the paper headline: up to 8.5x, avg 4.15x).

#include "bench_common.hpp"

int main() {
    using namespace spider;
    bench::print_preamble("bench_fig14_hit_ratio", "Figure 14");

    const std::vector<sim::StrategyKind> policies = {
        sim::StrategyKind::kBaselineLru, sim::StrategyKind::kCoorDL,
        sim::StrategyKind::kShade,       sim::StrategyKind::kICacheImp,
        sim::StrategyKind::kICache,      sim::StrategyKind::kSpiderImp,
        sim::StrategyKind::kSpider};
    const std::vector<double> cache_sizes = {0.10, 0.25, 0.50, 0.75};

    double improvement_sum = 0.0;
    double improvement_max = 0.0;
    std::size_t improvement_count = 0;
    // Our scan-adversarial LRU baseline hits near zero at small caches,
    // which inflates ratios; the paper's baseline tracks the cache
    // fraction, so CoorDL (hit = fraction) is the comparable denominator.
    double vs_coordl_sum = 0.0;
    double vs_coordl_max = 0.0;

    for (const nn::ModelProfile& model : nn::evaluated_profiles()) {
        util::Table table{std::string{"Fig 14: avg epoch hit ratio (%) — "} +
                          model.name + " on CIFAR-10"};
        std::vector<std::string> header = {"Cache size"};
        for (const auto policy : policies) {
            header.emplace_back(to_string(policy));
        }
        table.set_header(std::move(header));

        for (const double fraction : cache_sizes) {
            std::vector<std::string> row = {
                util::Table::fmt(fraction * 100.0, 0) + "%"};
            double baseline_hit = 0.0;
            double coordl_hit = 0.0;
            for (const auto policy : policies) {
                sim::SimConfig config = bench::cifar10_config();
                config.model = model;
                config.strategy = policy;
                config.cache_fraction = fraction;
                config.epochs = bench::epochs(25);
                const metrics::RunResult run =
                    sim::TrainingSimulator{config}.run();
                const double hit = run.average_hit_ratio();
                if (policy == sim::StrategyKind::kBaselineLru) {
                    baseline_hit = hit;
                }
                if (policy == sim::StrategyKind::kCoorDL) {
                    coordl_hit = hit;
                }
                if (policy == sim::StrategyKind::kSpider && baseline_hit > 0.0) {
                    const double factor = hit / baseline_hit;
                    improvement_sum += factor;
                    improvement_max = std::max(improvement_max, factor);
                    ++improvement_count;
                    const double vs_coordl = hit / std::max(coordl_hit, 1e-9);
                    vs_coordl_sum += vs_coordl;
                    vs_coordl_max = std::max(vs_coordl_max, vs_coordl);
                }
                row.push_back(util::Table::fmt(hit * 100.0, 1));
            }
            table.add_row(std::move(row));
        }
        table.print(std::cout);
        std::cout << "\n";
    }

    std::cout << "SpiderCache improvement over LRU baseline: up to "
              << util::Table::fmt(improvement_max, 1) << "x, avg "
              << util::Table::fmt(
                     improvement_sum / static_cast<double>(improvement_count),
                     2)
              << "x   (paper: up to 8.5x, avg 4.15x)\n";
    std::cout << "vs CoorDL (hit = cache fraction, the proportional baseline): "
              << "up to " << util::Table::fmt(vs_coordl_max, 1) << "x, avg "
              << util::Table::fmt(
                     vs_coordl_sum / static_cast<double>(improvement_count), 2)
              << "x\n";
    return 0;
}
