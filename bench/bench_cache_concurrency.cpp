// Concurrency bench for the sharded TwoLayerSemanticCache (ISSUE 2) and
// its seqlock read path (ISSUE 5): a mixed trainer-worker workload
// (~90% lookup, ~8% miss admission, ~2% homophily update) hammered by
// 1/2/4/8 threads against
//
//   - "seqlock":     8 shards, lock-free reads through the residency view,
//   - "locked":      8 shards, every read takes the shard mutex, and
//   - "global-lock": shards=1, mutex reads (the pre-sharding behavior)
//                    as the contention baseline,
//
// reporting aggregate ops/s, the quiescent hit ratio, and the p99 lookup
// latency sampled on thread 0. Prints a human-readable table and writes
// BENCH_cache.json so the baseline is diffable across PRs.
//
// Note: on single-core hosts (CI containers) thread counts above 1 cannot
// exceed 1x on real parallelism; the sharded-vs-global comparison at each
// thread count is the meaningful signal there, since it isolates lock
// contention from core count.
//
// Usage: bench_cache_concurrency [--out BENCH_cache.json]
//                                [--ops N] [--shards S]

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "cache/semantic_cache.hpp"
#include "core/prefetch.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace {

using namespace spider;
using Clock = std::chrono::steady_clock;

struct WorkloadResult {
    double ops_per_s = 0.0;
    double hit_ratio = 0.0;
    double p99_lookup_ns = 0.0;
};

/// Runs `threads` workers for `ops_per_thread` mixed ops against a fresh
/// cache with the given shard count. Thread 0 timestamps each lookup for
/// the p99; the others run untimed to keep the probe overhead off the
/// aggregate throughput number.
WorkloadResult run_workload(std::size_t threads, std::size_t shards,
                            bool lockfree_reads, std::size_t ops_per_thread,
                            std::uint32_t id_space) {
    cache::TwoLayerSemanticCache cache{4096, 0.7, shards, lockfree_reads};
    // Warm: fill to capacity so steady-state admissions contend for real.
    {
        util::Rng warm{99};
        for (std::uint32_t i = 0; i < 3 * 4096; ++i) {
            cache.on_miss_fetched(static_cast<std::uint32_t>(
                                      warm.uniform_index(id_space)),
                                  warm.uniform());
        }
    }

    std::atomic<std::uint64_t> hits{0};
    std::atomic<std::uint64_t> lookups{0};
    std::vector<double> lookup_ns;  // thread 0 only
    lookup_ns.reserve(ops_per_thread);

    std::atomic<bool> go{false};
    std::vector<std::thread> workers;
    workers.reserve(threads);
    for (std::size_t t = 0; t < threads; ++t) {
        workers.emplace_back([&, t] {
            util::Rng rng{0xCAFEULL + t};
            std::uint64_t local_hits = 0;
            std::uint64_t local_lookups = 0;
            while (!go.load(std::memory_order_acquire)) {
                std::this_thread::yield();
            }
            for (std::size_t op = 0; op < ops_per_thread; ++op) {
                const auto id = static_cast<std::uint32_t>(
                    rng.uniform_index(id_space));
                const double roll = rng.uniform();
                if (roll < 0.90) {
                    ++local_lookups;
                    // Sample 1/16 of thread 0's lookups: enough for a
                    // stable p99, cheap enough that the timing probe does
                    // not distort the 1-thread throughput baseline.
                    if (t == 0 && (op & 0xF) == 0) {
                        const auto start = Clock::now();
                        const auto result = cache.lookup(id);
                        lookup_ns.push_back(
                            std::chrono::duration<double, std::nano>(
                                Clock::now() - start)
                                .count());
                        local_hits += result.kind != cache::HitKind::kMiss;
                    } else {
                        local_hits +=
                            cache.lookup(id).kind != cache::HitKind::kMiss;
                    }
                } else if (roll < 0.98) {
                    cache.on_miss_fetched(id, rng.uniform());
                } else {
                    const std::uint32_t nb[] = {id + 1, id + 3, id + 7};
                    cache.update_homophily(id, nb);
                }
            }
            hits.fetch_add(local_hits, std::memory_order_relaxed);
            lookups.fetch_add(local_lookups, std::memory_order_relaxed);
        });
    }

    const auto start = Clock::now();
    go.store(true, std::memory_order_release);
    for (auto& w : workers) w.join();
    const double elapsed =
        std::chrono::duration<double>(Clock::now() - start).count();

    WorkloadResult result;
    result.ops_per_s =
        static_cast<double>(threads * ops_per_thread) / elapsed;
    result.hit_ratio = lookups.load() == 0
                           ? 0.0
                           : static_cast<double>(hits.load()) /
                                 static_cast<double>(lookups.load());
    if (!lookup_ns.empty()) {
        const auto p99_at = static_cast<std::ptrdiff_t>(
            0.99 * static_cast<double>(lookup_ns.size() - 1));
        std::nth_element(lookup_ns.begin(), lookup_ns.begin() + p99_at,
                         lookup_ns.end());
        result.p99_lookup_ns = lookup_ns[static_cast<std::size_t>(p99_at)];
    }
    return result;
}

/// PrefetchPipeline issue->consume round-trip throughput under a given
/// in-flight window. `resize_each_batch` exercises the adaptive depth
/// controller's call pattern: set_max_in_flight once per batch (cycling
/// the window up and down) while the pipeline is hot — the cost of the
/// runtime resize must be noise against the fetch round-trips.
double run_prefetch_sweep(std::size_t window, std::size_t batches,
                          bool resize_each_batch) {
    constexpr std::size_t kBatch = 64;
    core::PrefetchPipeline::Config pc;
    pc.threads = 2;
    pc.max_in_flight = window;
    core::PrefetchPipeline pipeline{
        [](std::uint32_t) { return false; },
        [](std::uint32_t id) {
            // Stand-in for a remote fetch: touch the id so the callback
            // is not optimized away; real fetch latency is virtual-time.
            volatile std::uint32_t sink = id;
            (void)sink;
        },
        pc};

    const auto start = Clock::now();
    std::uint32_t next_id = 0;
    std::vector<std::uint32_t> ids(kBatch);
    for (std::size_t b = 0; b < batches; ++b) {
        if (resize_each_batch) {
            // Triangle wave over [window/2, 2*window]: the shape the EWMA
            // controller produces when load oscillates.
            const std::size_t lo = std::max<std::size_t>(window / 2, 1);
            const std::size_t hi = 2 * window;
            const std::size_t span = hi - lo + 1;
            pipeline.set_max_in_flight(lo + (b % span));
        }
        for (auto& id : ids) id = next_id++;
        pipeline.prefetch(ids);
        for (const std::uint32_t id : ids) (void)pipeline.consume(id);
    }
    pipeline.drain();
    const double elapsed =
        std::chrono::duration<double>(Clock::now() - start).count();
    return static_cast<double>(batches * kBatch) / elapsed;
}

}  // namespace

int main(int argc, char** argv) {
    std::string out_path = "BENCH_cache.json";
    std::size_t ops_per_thread = 400000;
    std::size_t shards = 8;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--out" && i + 1 < argc) {
            out_path = argv[++i];
        } else if (arg == "--ops" && i + 1 < argc) {
            ops_per_thread = static_cast<std::size_t>(std::stoul(argv[++i]));
        } else if (arg == "--shards" && i + 1 < argc) {
            shards = static_cast<std::size_t>(std::stoul(argv[++i]));
        } else {
            std::cerr << "usage: bench_cache_concurrency [--out F] [--ops N]"
                         " [--shards S]\n";
            return 2;
        }
    }
    constexpr std::uint32_t kIdSpace = 16384;

    std::cout << "### bench_cache_concurrency — sharded vs global-lock "
                 "TwoLayerSemanticCache\n"
              << "### hardware threads: "
              << std::thread::hardware_concurrency() << ", shards: " << shards
              << ", ops/thread: " << ops_per_thread << "\n\n";

    util::Table table{"mixed cache ops (90% lookup / 8% admit / 2% homophily)"};
    table.set_header({"threads", "layout", "Mops/s", "hit ratio",
                      "p99 lookup ns", "vs 1-thread"});

    struct Layout {
        const char* name;
        bool sharded;
        bool lockfree;
    };
    constexpr Layout kLayouts[] = {
        {"seqlock", true, true},
        {"locked", true, false},
        {"global-lock", false, false},
    };

    std::ostringstream json;
    json << "{\n  \"rows\": [\n";
    bool first = true;
    double bases[3] = {0.0, 0.0, 0.0};
    for (const std::size_t threads : {1UL, 2UL, 4UL, 8UL}) {
        for (std::size_t l = 0; l < 3; ++l) {
            const Layout& layout = kLayouts[l];
            const std::size_t layout_shards = layout.sharded ? shards : 1;
            const WorkloadResult r =
                run_workload(threads, layout_shards, layout.lockfree,
                             ops_per_thread, kIdSpace);
            if (threads == 1) bases[l] = r.ops_per_s;
            const double scaling =
                bases[l] == 0.0 ? 0.0 : r.ops_per_s / bases[l];
            table.add_row({std::to_string(threads), layout.name,
                           util::Table::fmt(r.ops_per_s / 1e6, 2),
                           util::Table::fmt(r.hit_ratio, 3),
                           util::Table::fmt(r.p99_lookup_ns, 0),
                           util::Table::fmt(scaling, 2)});
            if (!first) json << ",\n";
            first = false;
            json << "    {\"threads\": " << threads << ", \"shards\": "
                 << layout_shards
                 << ", \"lockfree\": " << (layout.lockfree ? "true" : "false")
                 << ", \"ops_per_s\": " << r.ops_per_s
                 << ", \"hit_ratio\": " << r.hit_ratio
                 << ", \"p99_lookup_ns\": " << r.p99_lookup_ns
                 << ", \"scaling_vs_1t\": " << scaling << "}";
        }
    }
    table.print(std::cout);

    // Prefetch window sweep (ISSUE 4): issue->consume round-trip
    // throughput across static windows, plus the adaptive controller's
    // resize-per-batch pattern. Printed only — BENCH_cache.json keeps its
    // committed schema.
    const std::size_t sweep_batches = std::max<std::size_t>(
        ops_per_thread / 400, 64);
    util::Table sweep{"PrefetchPipeline issue->consume round-trips"};
    sweep.set_header({"window", "mode", "Kops/s"});
    for (const std::size_t window : {16UL, 64UL, 256UL}) {
        sweep.add_row({std::to_string(window), "static",
                       util::Table::fmt(
                           run_prefetch_sweep(window, sweep_batches, false) /
                               1e3,
                           1)});
    }
    sweep.add_row({"64 (cycling)", "resize/batch",
                   util::Table::fmt(
                       run_prefetch_sweep(64, sweep_batches, true) / 1e3,
                       1)});
    sweep.print(std::cout);

    json << "\n  ],\n  \"hardware_threads\": "
         << std::thread::hardware_concurrency()
         << ",\n  \"ops_per_thread\": " << ops_per_thread << "\n}\n";
    std::ofstream out_file{out_path};
    out_file << json.str();
    if (!out_file) {
        std::cerr << "warning: could not write " << out_path << "\n";
        return 1;
    }
    std::cout << "\nwrote " << out_path << "\n";
    return 0;
}
