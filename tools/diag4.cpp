#include <cstdio>
#include <cstdlib>
#include "data/presets.hpp"
#include "sim/simulator.hpp"
int main(int argc, char** argv) {
    using namespace spider;
    double keep = argc > 1 ? std::atof(argv[1]) : 0.6;
    sim::SimConfig c;
    c.dataset = data::cifar100_like(0.06);
    c.strategy = sim::StrategyKind::kICache;
    c.cache_fraction = 0.0;
    c.epochs = 16;
    c.icache_keep_fraction = keep;
    auto r = sim::TrainingSimulator{c}.run();
    for (size_t e = 0; e < r.epochs.size(); e += 3)
        printf("ep%zu loss=%.3f acc=%.3f\n", e, r.epochs[e].train_loss, r.epochs[e].test_accuracy);
    return 0;
}
