#!/usr/bin/env bash
# Tier-1 gate: Release build with warnings-as-errors, full ctest run.
#
#   tools/run_tier1.sh            # Release + -Werror + ctest
#   tools/run_tier1.sh --tsan     # additionally: ThreadSanitizer build of
#                                 # the concurrency-sensitive tests
#                                 # (concurrent knn, score_batch,
#                                 # parallel_for, sharded cache, prefetch)
#                                 # in build-tsan/
#   tools/run_tier1.sh --asan     # additionally: AddressSanitizer + UBSan
#                                 # build of the full test suite in
#                                 # build-asan/
#   tools/run_tier1.sh --faults   # additionally: ThreadSanitizer pass over
#                                 # the fault-injection / degraded-mode
#                                 # suite (resilient store, breaker, fault
#                                 # simulator — DESIGN.md §9) in build-tsan/
#   tools/run_tier1.sh --prefetch # additionally: ThreadSanitizer pass over
#                                 # the adaptive / epoch-crossing prefetch
#                                 # suite (budget arithmetic, depth
#                                 # controller, sampler peek, simulator
#                                 # determinism — DESIGN.md §8.3) in
#                                 # build-tsan/
#   tools/run_tier1.sh --lockfree # additionally: ThreadSanitizer pass over
#                                 # the seqlock read path (DESIGN.md §8.4):
#                                 # concurrency + cross-shard-invariant
#                                 # oracle tests with cache_lockfree_reads
#                                 # both on and off, plus the single-
#                                 # threaded seqlock parity traces, in
#                                 # build-tsan/
#   tools/run_tier1.sh --server   # additionally: ThreadSanitizer pass over
#                                 # the cache service (DESIGN.md §10):
#                                 # event loop + concurrent wire clients,
#                                 # multi-tenant isolation stress, the
#                                 # served-simulator front-end, and the
#                                 # SsdTier miss-path locking, in
#                                 # build-tsan/
#   tools/run_tier1.sh --cluster  # additionally: ThreadSanitizer pass over
#                                 # the multi-node cooperative cache
#                                 # (DESIGN.md §11): concurrent service()
#                                 # across nodes, hash-ring ownership, and
#                                 # the threaded cluster-mode simulator,
#                                 # in build-tsan/
#   tools/run_tier1.sh --policy   # additionally: ThreadSanitizer pass over
#                                 # the eviction-policy seam and the shadow
#                                 # tuner (DESIGN.md §13): policy parity
#                                 # traces, live set_section_policies
#                                 # switches, tuner determinism, and the
#                                 # ghost-replay-vs-live-traffic race
#                                 # check, in build-tsan/
#   tools/run_tier1.sh --ssd      # additionally: AddressSanitizer + UBSan
#                                 # pass over the on-disk block store
#                                 # (DESIGN.md §14): segment framing,
#                                 # torn-tail/CRC recovery, bloom-guarded
#                                 # reads, whole-segment GC, and the
#                                 # tier/WAL restore drift fixes, in
#                                 # build-asan/
#   tools/run_tier1.sh --chaos    # additionally: ThreadSanitizer build of
#                                 # the chaos/soak harness (DESIGN.md §12)
#                                 # plus the WAL / warm-restart / weather
#                                 # suites, then a spider_chaos --smoke
#                                 # soak (~4.2 virtual hours of kill/
#                                 # restart, elastic, churn, and weather
#                                 # storms under TSan) in build-tsan/
#
# Build directories: build-tier1/, build-tsan/, build-asan/ (gitignored).

set -euo pipefail
cd "$(dirname "$0")/.."

run_tsan=0
run_asan=0
run_faults=0
run_prefetch=0
run_lockfree=0
run_server=0
run_cluster=0
run_policy=0
run_chaos=0
run_ssd=0
for arg in "$@"; do
  case "$arg" in
    --tsan) run_tsan=1 ;;
    --asan) run_asan=1 ;;
    --faults) run_faults=1 ;;
    --prefetch) run_prefetch=1 ;;
    --lockfree) run_lockfree=1 ;;
    --server) run_server=1 ;;
    --cluster) run_cluster=1 ;;
    --policy) run_policy=1 ;;
    --chaos) run_chaos=1 ;;
    --ssd) run_ssd=1 ;;
    *) echo "usage: $0 [--tsan] [--asan] [--faults] [--prefetch] [--lockfree] [--server] [--cluster] [--policy] [--chaos] [--ssd]" >&2; exit 2 ;;
  esac
done

jobs="$(nproc 2>/dev/null || echo 2)"

echo "== tier-1: Release + warnings-as-errors =="
cmake -B build-tier1 -S . \
  -DCMAKE_BUILD_TYPE=Release \
  -DSPIDER_WARNINGS_AS_ERRORS=ON
cmake --build build-tier1 -j "$jobs"
ctest --test-dir build-tier1 --output-on-failure -j "$jobs"

if [[ "$run_tsan" == 1 ]]; then
  echo "== opt-in: ThreadSanitizer pass over the concurrent paths =="
  # Benches/examples are irrelevant under TSan and double the build time.
  cmake -B build-tsan -S . \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DSPIDER_TSAN=ON \
    -DSPIDER_BUILD_BENCH=OFF \
    -DSPIDER_BUILD_EXAMPLES=OFF
  cmake --build build-tsan -j "$jobs" \
    --target ann_test scorer_test util_test pipeline_test \
             cache_concurrency_test shard_parity_test fault_tolerance_test
  ctest --test-dir build-tsan --output-on-failure -j "$jobs" \
    -R 'Concurrent|ScoreBatch|ThreadPool|Pipelined'
fi

if [[ "$run_faults" == 1 ]]; then
  echo "== opt-in: ThreadSanitizer pass over the fault-tolerance paths =="
  cmake -B build-tsan -S . \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DSPIDER_TSAN=ON \
    -DSPIDER_BUILD_BENCH=OFF \
    -DSPIDER_BUILD_EXAMPLES=OFF
  cmake --build build-tsan -j "$jobs" \
    --target fault_tolerance_test cache_concurrency_test
  ctest --test-dir build-tsan --output-on-failure -j "$jobs" \
    -R 'FaultModel|ResilientStore|FaultSimulator|RemoteStoreConcurrency|PrefetchConcurrency'
fi

if [[ "$run_prefetch" == 1 ]]; then
  echo "== opt-in: ThreadSanitizer pass over the adaptive-prefetch paths =="
  cmake -B build-tsan -S . \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DSPIDER_TSAN=ON \
    -DSPIDER_BUILD_BENCH=OFF \
    -DSPIDER_BUILD_EXAMPLES=OFF
  cmake --build build-tsan -j "$jobs" \
    --target prefetch_adaptive_test cache_concurrency_test \
             fault_tolerance_test
  ctest --test-dir build-tsan --output-on-failure -j "$jobs" \
    -R 'PrefetchBudget|AdaptiveWindow|SamplerPeek|PrefetchAdaptive|PrefetchConcurrency|FailedSpeculative'
fi

if [[ "$run_lockfree" == 1 ]]; then
  echo "== opt-in: ThreadSanitizer pass over the seqlock read path =="
  # The CacheConcurrencyMode suites run every stress/oracle scenario with
  # cache_lockfree_reads on (seqlock view) and off (mutex reads); the
  # SeqlockParity traces pin the two modes to identical hit/miss sequences.
  cmake -B build-tsan -S . \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DSPIDER_TSAN=ON \
    -DSPIDER_BUILD_BENCH=OFF \
    -DSPIDER_BUILD_EXAMPLES=OFF
  cmake --build build-tsan -j "$jobs" \
    --target cache_concurrency_test shard_parity_test cache_test
  ctest --test-dir build-tsan --output-on-failure -j "$jobs" \
    -R 'Concurrent|SeqlockParity|ShardParity|ShardedInvariants|SemanticCache'
fi

if [[ "$run_server" == 1 ]]; then
  echo "== opt-in: ThreadSanitizer pass over the cache service =="
  # Event-loop thread vs. concurrent blocking clients, the multi-tenant
  # isolation stress, the served-simulator round trip, and the SsdTier
  # internal locking the server miss path relies on.
  cmake -B build-tsan -S . \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DSPIDER_TSAN=ON \
    -DSPIDER_BUILD_BENCH=OFF \
    -DSPIDER_BUILD_EXAMPLES=OFF
  cmake --build build-tsan -j "$jobs" \
    --target server_test tenant_isolation_test ssd_tier_test
  ctest --test-dir build-tsan --output-on-failure -j "$jobs" \
    -R 'ServerWire|ServedSimulator|TenantManager|TenantIsolation|SsdTierConcurrent|Protocol|FrameDecoder'
fi

if [[ "$run_cluster" == 1 ]]; then
  echo "== opt-in: ThreadSanitizer pass over the cooperative cache =="
  # Loader workers hammering CooperativeCache::service() across nodes
  # (shared freq table, per-node shards, budget reservations), the ring
  # unit suite, and the threaded multi-node simulator run.
  cmake -B build-tsan -S . \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DSPIDER_TSAN=ON \
    -DSPIDER_BUILD_BENCH=OFF \
    -DSPIDER_BUILD_EXAMPLES=OFF
  cmake --build build-tsan -j "$jobs" \
    --target cluster_test hash_ring_test cache_concurrency_test
  ctest --test-dir build-tsan --output-on-failure -j "$jobs" \
    -R 'ClusterConcurrent|ClusterSim|CooperativeCacheTest|HashRing'
fi

if [[ "$run_policy" == 1 ]]; then
  echo "== opt-in: ThreadSanitizer pass over the policy seam + tuner =="
  # The oracle parity traces and shrink audits, live policy switches on a
  # sharded cache, tuner hysteresis/determinism, and the ShadowConcurrent
  # scenario (workers hammering the live cache while the driver thread
  # replays into the ghosts), plus the sharded-cache concurrency suite the
  # seam must not regress.
  cmake -B build-tsan -S . \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DSPIDER_TSAN=ON \
    -DSPIDER_BUILD_BENCH=OFF \
    -DSPIDER_BUILD_EXAMPLES=OFF
  cmake --build build-tsan -j "$jobs" \
    --target policy_test shadow_tuner_test cache_concurrency_test \
             cache_test
  ctest --test-dir build-tsan --output-on-failure -j "$jobs" \
    -R 'PolicyParity|PolicyKindNames|ShrinkOrder|RandomCachePolicy|SectionPolicySwitch|ShadowTuner|ShadowConcurrent|TunerConfig_|Concurrent'
fi

if [[ "$run_chaos" == 1 ]]; then
  echo "== opt-in: ThreadSanitizer chaos/soak pass =="
  # The WAL / warm-restart / weather unit suites, then the spider_chaos
  # --smoke soak: ~4.2 virtual hours of multithreaded op bursts under
  # kill -9 + WAL restarts, elastic flips, cluster churn, and weather
  # storms, freeze-oracle checked every virtual minute.
  cmake -B build-tsan -S . \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DSPIDER_TSAN=ON \
    -DSPIDER_BUILD_BENCH=OFF \
    -DSPIDER_BUILD_EXAMPLES=OFF
  cmake --build build-tsan -j "$jobs" \
    --target spider_chaos wal_test fault_tolerance_test \
             cache_concurrency_test ssd_tier_test
  ctest --test-dir build-tsan --output-on-failure -j "$jobs" \
    -R 'WalTest|Weather|ChaosSmoke|FaultModel|SsdTierConcurrent|ConcurrentOracle'
fi

if [[ "$run_ssd" == 1 ]]; then
  echo "== opt-in: ASan + UBSan pass over the on-disk block store =="
  # Heavy pointer/offset arithmetic (frame packing, index binary search,
  # preads at computed offsets) makes ASan the right sanitizer here; the
  # suite covers segment round trips, torn-tail + corrupt-CRC recovery,
  # bloom FPR, GC, kill -9 payload durability, and the residency/WAL
  # drift regressions (restore-streamed evictions, disabled-tier misses).
  cmake -B build-asan -S . \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DSPIDER_ASAN=ON \
    -DSPIDER_BUILD_BENCH=OFF \
    -DSPIDER_BUILD_EXAMPLES=OFF
  cmake --build build-asan -j "$jobs" \
    --target ssd_block_store_test ssd_tier_test wal_test
  ctest --test-dir build-asan --output-on-failure -j "$jobs" \
    -R 'SsdBlockStore|SsdTier|WalTest'
fi

if [[ "$run_asan" == 1 ]]; then
  echo "== opt-in: AddressSanitizer + UBSan pass over the full suite =="
  cmake -B build-asan -S . \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DSPIDER_ASAN=ON \
    -DSPIDER_BUILD_BENCH=OFF \
    -DSPIDER_BUILD_EXAMPLES=OFF
  cmake --build build-asan -j "$jobs"
  ctest --test-dir build-asan --output-on-failure -j "$jobs"
fi

echo "tier-1 OK"
