// spider_server: the standalone cache service. Wires a TenantCacheManager
// behind the wire protocol, with the production miss path — shared SSD
// write-back tier in front of a fault-injectable remote store reached
// through the retry/hedge/breaker resilient client (all virtual-cost; the
// server itself never sleeps on the miss path).
//
//   ./spider_server                        # defaults: port 7071, 1 tenant
//   ./spider_server configs/example.ini    # [server] section + [storage]/
//                                          # [faults]/[resilience] reuse
//   ./spider_server --port 0               # ephemeral port (printed)
//
// Stops cleanly on SIGINT/SIGTERM.

#include <atomic>
#include <csignal>
#include <cstring>
#include <iostream>
#include <string>
#include <thread>

#include "data/dataset.hpp"
#include "data/presets.hpp"
#include "server/config_io.hpp"
#include "server/server.hpp"
#include "sim/config_io.hpp"
#include "storage/resilient_store.hpp"
#include "storage/ssd_tier.hpp"
#include "util/config.hpp"

namespace {

std::atomic<bool> g_stop{false};

void handle_signal(int) { g_stop.store(true, std::memory_order_relaxed); }

}  // namespace

int main(int argc, char** argv) {
    using namespace spider;

    util::Config ini;
    std::optional<std::uint16_t> port_override;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--port" && i + 1 < argc) {
            port_override =
                static_cast<std::uint16_t>(std::stoi(argv[++i]));
        } else if (arg == "--help" || arg == "-h") {
            std::cout << "usage: spider_server [config.ini] [--port P]\n";
            return 0;
        } else {
            ini = util::Config::load_file(arg);
        }
    }

    server::ServerConfig config = server::server_config_from(ini);
    if (config.port == 0 && !port_override) config.port = 7071;
    if (port_override) config.port = *port_override;

    // Backing store for the miss path: a synthetic dataset stands in for
    // the remote sample files (the virtual cost model is what matters),
    // sized generously so any id the loaders ask for exists.
    sim::SimConfig sim_config = sim::sim_config_from(ini);
    data::DatasetSpec spec = sim_config.dataset;
    spec.num_samples =
        std::max<std::size_t>(spec.num_samples, config.cache_items * 8);
    data::SyntheticDataset dataset{spec};
    storage::RemoteStore remote{dataset, sim_config.remote};
    storage::SsdTierConfig ssd_config = sim_config.ssd;
    storage::SsdTier ssd{ssd_config};
    storage::ResilientStore resilient{remote, sim_config.faults,
                                      sim_config.resilience};

    // The sample's feature bytes stand in for the decoded training record
    // (what a real deployment would read off the dataset files); these are
    // the bytes the SSD block store persists and GET_DATA returns.
    const auto sample_bytes =
        [&dataset](std::uint32_t id) -> std::vector<std::uint8_t> {
        const auto& features =
            dataset.sample(id % static_cast<std::uint32_t>(dataset.size()))
                .features;
        const auto* p = reinterpret_cast<const std::uint8_t*>(features.data());
        return {p, p + features.size() * sizeof(float)};
    };

    const auto miss_fetch = [&](std::uint8_t, std::uint32_t id,
                                storage::SimDuration now)
        -> server::MissOutcome {
        // SSD hit: in block mode these are the bytes written back below,
        // read straight off the segment file (bloom-gated).
        if (auto payload = ssd.fetch_payload(id)) {
            return {.ok = true, .from_ssd = true,
                    .payload = std::move(*payload)};
        }
        const std::uint32_t sample =
            id % static_cast<std::uint32_t>(dataset.size());
        if (sim_config.faults.enabled) {
            const storage::FetchResult r = resilient.fetch(sample, now);
            if (!r.ok) return {.ok = false, .from_ssd = false};
        } else {
            (void)remote.fetch(sample);
        }
        std::vector<std::uint8_t> payload = sample_bytes(id);
        // Write-back: the block store owns a durable copy; residency-model
        // tiers track the id only.
        ssd.insert(id, payload);
        return {.ok = true, .from_ssd = false, .payload = std::move(payload)};
    };

    // GET_DATA hits in the in-memory cache never reach miss_fetch; their
    // bytes come from the dataset directly.
    const auto payload_read =
        [&sample_bytes](std::uint8_t, std::uint32_t id) {
            return sample_bytes(id);
        };

    server::SpiderServer server{config, miss_fetch, payload_read};
    try {
        server.start();
    } catch (const std::exception& e) {
        std::cerr << "spider_server: " << e.what() << "\n";
        return 1;
    }
    std::cout << "spider_server listening on " << config.host << ":"
              << server.port() << " (" << server.tenants().num_tenants()
              << " tenant(s), " << config.cache_items << " items, pipeline "
              << config.max_pipeline << ")\n";

    std::signal(SIGINT, handle_signal);
    std::signal(SIGTERM, handle_signal);
    while (!g_stop.load(std::memory_order_relaxed)) {
        std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
    const server::StatsReply stats = server.stats();
    server.stop();
    std::cout << "spider_server: served " << stats.frames << " frames in "
              << stats.batches << " batches ("
              << (stats.batches > 0
                      ? static_cast<double>(stats.frames) /
                            static_cast<double>(stats.batches)
                      : 0.0)
              << "x amplification), " << stats.errors << " errors\n";
    return 0;
}
