#include <algorithm>
#include <cstdio>
#include <vector>
#include "data/presets.hpp"
#include "nn/mlp_classifier.hpp"
#include "nn/optimizer.hpp"
#include "core/spider_cache.hpp"

// Direct driver replicating the simulator loop with instrumentation.
int main() {
    using namespace spider;
    auto spec = data::cifar10_like(0.04);
    spec.class_separation = 0.55;
    data::SyntheticDataset ds{spec};

    nn::MlpConfig mc; mc.input_dim = ds.feature_dim(); mc.hidden_dims = {64,32};
    mc.num_classes = ds.num_classes(); mc.seed = 7;
    nn::MlpClassifier model{mc};

    core::SpiderCacheConfig sc;
    sc.dataset_size = ds.size();
    sc.label_of = [&](uint32_t id){ return ds.label_of(id); };
    sc.cache_items = (size_t)(0.2 * ds.size());
    sc.embedding_dim = 32;
    core::SpiderCache spider{sc};

    const size_t B = 128, epochs = 40;
    for (size_t e = 0; e < epochs; ++e) {
        auto order = spider.epoch_order();
        size_t imp=0, homo=0, miss=0;
        for (size_t s = 0; s < order.size(); s += B) {
            size_t cnt = std::min(B, order.size()-s);
            std::vector<uint32_t> served(cnt);
            for (size_t i=0;i<cnt;++i){
                auto r = spider.lookup(order[s+i]);
                served[i]=r.served_id;
                if (r.kind==cache::HitKind::kImportance) imp++;
                else if (r.kind==cache::HitKind::kHomophily) homo++;
                else { miss++; spider.on_miss_fetched(order[s+i]); }
            }
            auto X = ds.gather_features(served);
            auto y = ds.gather_labels(served);
            auto fwd = model.forward(X, y);
            model.backward_and_step(y);
            spider.observe_batch(served, fwd.embeddings);
        }
        double acc = model.evaluate(ds.test_features(), ds.test_labels());
        double ratio = spider.end_epoch(acc);
        if (e%5==0 || e==epochs-1) {
            auto scores = spider.scores();
            std::vector<double> sorted(scores.begin(), scores.end());
            std::sort(sorted.rbegin(), sorted.rend());
            double total=0, top=0; size_t topn=sc.cache_items;
            for (size_t i=0;i<sorted.size();++i){ total+=sorted[i]; if(i<topn) top+=sorted[i]; }
            // overlap: residents in top-N?
            size_t resident_in_top=0;
            double cutoff = sorted[topn-1];
            size_t imp_size = spider.cache().importance().size();
            for (uint32_t id=0; id<ds.size(); ++id)
                if (spider.cache().importance().contains(id) && scores[id] >= cutoff) resident_in_top++;
            printf("ep%2zu acc=%.3f imp=%zu homo=%zu miss=%zu | std=%.4f topshare=%.2f cut=%.3f max=%.3f med=%.3f | imp_sz=%zu in_top=%zu homo_sz=%zu ratio=%.2f\n",
                   e, acc, imp, homo, miss, spider.score_std(), top/total, cutoff, sorted[0],
                   sorted[sorted.size()/2], imp_size, resident_in_top,
                   spider.cache().homophily().size(), ratio);
        }
    }
    return 0;
}
