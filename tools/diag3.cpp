#include <cstdio>
#include <cstdlib>
#include "data/presets.hpp"
#include "sim/simulator.hpp"

// Ablation: SpiderCache with varying sampling floor (floor=1e6 ~ uniform
// with replacement) to isolate replacement vs emphasis effects.
int main(int argc, char** argv) {
    using namespace spider;
    double scale = argc > 1 ? std::atof(argv[1]) : 0.1;
    for (double floor_v : {0.05, 0.1, 0.5, 2.0, 1e6}) {
        double acc = 0, hit = 0;
        for (int seed = 1; seed <= 2; ++seed) {
            sim::SimConfig c;
            c.dataset = data::cifar10_like(scale, 42 + seed);
            c.epochs = 40;
            c.seed = (uint64_t)seed;
            c.strategy = sim::StrategyKind::kSpider;
            c.spider_sampler_floor = floor_v;
            sim::TrainingSimulator s2{c};
            auto r = s2.run();
            acc += r.final_accuracy; hit += r.tail_hit_ratio(5);
        }
        printf("floor=%8.2f acc=%5.1f%% tail_hit=%5.1f%%\n", floor_v, acc/2*100, hit/2*100);
    }
    return 0;
}
