#include <cstdlib>
#include <cstdio>
#include <map>
#include <vector>
#include "data/presets.hpp"
#include "sim/simulator.hpp"

int main(int argc, char** argv) {
    using namespace spider;
    double sep = argc > 1 ? std::atof(argv[1]) : 0.55;
    int epochs = argc > 2 ? std::atoi(argv[2]) : 40;
    double scale = argc > 3 ? std::atof(argv[3]) : 0.1;
    int seeds = argc > 4 ? std::atoi(argv[4]) : 2;
    double lr = argc > 5 ? std::atof(argv[5]) : 0.05;

    for (auto s : {sim::StrategyKind::kBaselineLru, sim::StrategyKind::kCoorDL,
                   sim::StrategyKind::kShade, sim::StrategyKind::kICache,
                   sim::StrategyKind::kSpiderImp, sim::StrategyKind::kSpider}) {
        double hit=0, tail=0, acc=0, best=0, t=0, imp=0, homo=0, subst=0;
        for (int seed = 1; seed <= seeds; ++seed) {
            sim::SimConfig c;
            c.dataset = data::cifar10_like(scale, 42 + seed);
            c.dataset.class_separation = sep;
            c.epochs = (size_t)epochs;
            c.seed = (uint64_t)seed;
            c.sgd.learning_rate = (float)lr;
            c.strategy = s;
            sim::TrainingSimulator simulator{c};
            auto r = simulator.run();
            hit += r.average_hit_ratio(); tail += r.tail_hit_ratio(5);
            acc += r.final_accuracy; best += r.best_accuracy; t += r.total_minutes();
            imp += (double)r.epochs.back().importance_hits;
            homo += (double)r.epochs.back().homophily_hits;
            subst += (double)r.epochs.back().substitutions;
        }
        double k = seeds;
        printf("%-16s hit=%5.1f%% tail=%5.1f%% acc=%5.1f%% best=%5.1f%% time=%6.1fmin imp=%.0f homo=%.0f subst=%.0f\n",
               to_string(s), hit/k*100, tail/k*100, acc/k*100, best/k*100, t/k, imp/k, homo/k, subst/k);
    }
    return 0;
}
