// spider_chaos: virtual-time chaos/soak harness (DESIGN.md §12.3).
//
// Drives the concurrency-facing components — TwoLayerSemanticCache (+ WAL
// listeners), SsdTier, CooperativeCache, and a weather-enabled FaultModel —
// through hours of *virtual* time in seconds of wall time, continuously
// checking the PR-5 freeze-oracle invariants:
//
//   (a) every neighbor-index entry names a resident homophily key
//   (b) no id is resident in both sections
//   (c) per-shard section sizes respect their capacity slices
//   (d) the seqlock residency view matches the locked sections exactly
//
// Each virtual-minute tick runs a multithreaded op burst against the
// cache and SSD tier, quiesces, freezes, and checks. Between ticks the
// harness injects chaos events: elastic repartition flips, kill -9 +
// warm restart through the WAL (with a different shard count, asserting
// >= 50% residency recovery), cluster join/leave churn, and weather-chain
// determinism probes against an independently constructed twin model.
//
//   ./spider_chaos --smoke             # fixed seed, ~4.2 virtual hours,
//                                      # bounded wall time (the ctest tier)
//   ./spider_chaos --hours 24 --seed 7 # overnight soak
//
// Exit status 0 = survived with zero invariant violations; 1 = any
// violation or failed recovery assertion (details on stderr).

#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "cache/semantic_cache.hpp"
#include "cluster/cooperative_cache.hpp"
#include "data/dataset.hpp"
#include "data/presets.hpp"
#include "storage/fault_model.hpp"
#include "storage/remote_store.hpp"
#include "storage/ssd_tier.hpp"
#include "storage/wal.hpp"
#include "util/rng.hpp"

namespace {

using namespace spider;

struct Options {
    double hours = 4.2;
    std::uint64_t seed = 1;
    std::size_t threads = 4;
    std::size_t ops_per_thread = 1500;  // per tick
    std::string wal_dir = "spider_chaos_wal";
    bool smoke = false;
};

/// Ports the four freeze-oracle invariant checks of
/// tests/cache_concurrency_test.cpp into violation strings (empty = sound).
std::vector<std::string> check_invariants(
    const cache::TwoLayerSemanticCache::FrozenState& frozen) {
    std::vector<std::string> violations;
    std::unordered_map<std::uint32_t, double> importance_scores;
    std::unordered_set<std::uint32_t> hom_keys;
    for (const auto& shard : frozen.shards) {
        for (const auto& [id, score] : shard.importance) {
            importance_scores.emplace(id, score);
        }
        for (const std::uint32_t key : shard.homophily_keys) {
            hom_keys.insert(key);
        }
    }
    for (std::size_t s = 0; s < frozen.shards.size(); ++s) {
        const auto& shard = frozen.shards[s];
        // (c) capacity slices.
        if (shard.importance.size() > shard.importance_capacity) {
            violations.push_back("(c) shard " + std::to_string(s) +
                                 " importance over capacity");
        }
        if (shard.homophily_keys.size() > shard.homophily_capacity) {
            violations.push_back("(c) shard " + std::to_string(s) +
                                 " homophily over capacity");
        }
        // (b) section exclusivity.
        for (const std::uint32_t key : shard.homophily_keys) {
            if (importance_scores.contains(key)) {
                violations.push_back("(b) id " + std::to_string(key) +
                                     " resident in both sections");
            }
        }
        // (a) neighbor-index soundness.
        for (const auto& [neighbor, keys] : shard.neighbor_index) {
            for (const std::uint32_t key : keys) {
                if (!hom_keys.contains(key)) {
                    violations.push_back(
                        "(a) neighbor " + std::to_string(neighbor) +
                        " names non-resident surrogate " +
                        std::to_string(key));
                }
            }
        }
        // (d) view <-> section parity.
        std::size_t imp_flags = 0;
        std::size_t hom_flags = 0;
        std::size_t sur_flags = 0;
        for (const auto& [id, probe] : shard.view) {
            using View = cache::ShardResidencyView;
            if (probe.flags & View::kImportance) {
                ++imp_flags;
                const auto it = importance_scores.find(id);
                if (it == importance_scores.end()) {
                    violations.push_back(
                        "(d) view lists non-resident importance id " +
                        std::to_string(id));
                } else if (it->second != probe.score) {
                    violations.push_back("(d) view score mismatch for id " +
                                         std::to_string(id));
                }
            }
            if (probe.flags & View::kHomKey) {
                ++hom_flags;
                if (!hom_keys.contains(id)) {
                    violations.push_back(
                        "(d) view lists non-resident hom key " +
                        std::to_string(id));
                }
            }
            if (probe.flags & View::kSurrogate) {
                ++sur_flags;
                if (!hom_keys.contains(probe.surrogate)) {
                    violations.push_back(
                        "(d) view surrogate for " + std::to_string(id) +
                        " names non-resident key " +
                        std::to_string(probe.surrogate));
                }
            }
        }
        if (imp_flags != shard.importance.size()) {
            violations.push_back("(d) shard " + std::to_string(s) +
                                 " view/importance count mismatch");
        }
        if (hom_flags != shard.homophily_keys.size()) {
            violations.push_back("(d) shard " + std::to_string(s) +
                                 " view/homophily count mismatch");
        }
        std::size_t index_entries = 0;
        for (const auto& [neighbor, keys] : shard.neighbor_index) {
            if (!keys.empty()) ++index_entries;
        }
        if (sur_flags != index_entries) {
            violations.push_back("(d) shard " + std::to_string(s) +
                                 " view/surrogate count mismatch");
        }
    }
    return violations;
}

Options parse_args(int argc, char** argv) {
    Options opt;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--hours" && i + 1 < argc) {
            opt.hours = std::stod(argv[++i]);
        } else if (arg == "--seed" && i + 1 < argc) {
            opt.seed = std::stoull(argv[++i]);
        } else if (arg == "--threads" && i + 1 < argc) {
            opt.threads = std::stoul(argv[++i]);
        } else if (arg == "--ops" && i + 1 < argc) {
            opt.ops_per_thread = std::stoul(argv[++i]);
        } else if (arg == "--wal-dir" && i + 1 < argc) {
            opt.wal_dir = argv[++i];
        } else if (arg == "--smoke") {
            // The ctest tier: fixed seed, >= 4 virtual hours, a lighter
            // op burst so the whole soak stays within seconds of wall
            // time on CI machines.
            opt.smoke = true;
            opt.hours = 4.2;
            opt.seed = 1;
            opt.ops_per_thread = 600;
        } else if (arg == "--help" || arg == "-h") {
            std::cout << "usage: spider_chaos [--hours H] [--seed N] "
                         "[--threads N] [--ops N] [--wal-dir D] [--smoke]\n";
            std::exit(0);
        } else {
            std::cerr << "spider_chaos: unknown argument '" << arg << "'\n";
            std::exit(2);
        }
    }
    return opt;
}

}  // namespace

int main(int argc, char** argv) {
    const Options opt = parse_args(argc, argv);

    constexpr double kTickMinutes = 1.0;  // one tick = one virtual minute
    const auto ticks = static_cast<std::size_t>(opt.hours * 60.0 /
                                                kTickMinutes);
    constexpr std::size_t kCacheCapacity = 384;
    constexpr std::uint32_t kIdSpace = 4096;
    constexpr std::size_t kSsdCapacity = 512;
    const std::size_t shard_choices[] = {1, 2, 4, 8};

    // Fresh WAL directory per run — a chaos soak must not warm-restart
    // from a previous process's residue.
    std::filesystem::remove_all(opt.wal_dir);
    storage::CacheWal wal{storage::WalConfig{
        .enabled = true, .dir = opt.wal_dir, .sync_every_append = false}};

    util::Rng rng{opt.seed ^ 0xC4A05ULL};
    auto cache = std::make_unique<cache::TwoLayerSemanticCache>(
        kCacheCapacity, 0.6, /*shards=*/4, /*lockfree_reads=*/true);
    auto ssd = std::make_unique<storage::SsdTier>(storage::SsdTierConfig{
        .enabled = true, .capacity_items = kSsdCapacity});
    const auto attach = [&wal, &cache, &ssd] {
        const cache::ResidencyListener listener =
            [&wal](const cache::ResidencyRecord& rec) { wal.append(rec); };
        cache->set_residency_listener(listener);
        ssd->set_residency_listener(listener);
    };
    attach();

    // Weather-enabled fault model + an independently constructed twin:
    // the chain must be a pure function of (seed, slot), so the two must
    // agree forever regardless of query order.
    storage::FaultModelConfig weather_cfg;
    weather_cfg.enabled = true;
    weather_cfg.seed = opt.seed ^ 0x5707'11ULL;
    weather_cfg.transient_failure_prob = 0.02;
    weather_cfg.latency_spike_prob = 0.05;
    weather_cfg.weather.enabled = true;
    weather_cfg.weather.slot_ms = 500.0;
    weather_cfg.weather.p_degrade = 0.05;
    weather_cfg.weather.p_recover = 0.20;
    weather_cfg.weather.p_fail = 0.10;
    weather_cfg.weather.p_restore = 0.30;
    const storage::FaultModel weather{weather_cfg, storage::from_ms(4.5)};
    const storage::FaultModel weather_twin{weather_cfg,
                                           storage::from_ms(4.5)};

    // Small cooperative cluster for membership churn.
    const data::SyntheticDataset dataset{data::cifar10_like(0.02, opt.seed)};
    storage::RemoteStore remote{dataset, storage::RemoteStoreConfig{}};
    cluster::ClusterConfig ccfg;
    ccfg.nodes = 3;
    ccfg.node_cache_items = 128;
    ccfg.seed = opt.seed;
    cluster::CooperativeCache cluster{dataset, remote, ccfg};

    std::uint64_t total_ops = 0;
    std::uint64_t kills = 0;
    std::uint64_t restored_total = 0;
    std::uint64_t elastic_flips = 0;
    std::uint64_t churn_events = 0;
    std::uint64_t weather_probes = 0;
    std::uint64_t slots_degraded = 0;
    std::uint64_t slots_outage = 0;
    std::uint64_t freeze_checks = 0;

    for (std::size_t tick = 0; tick < ticks; ++tick) {
        const storage::SimDuration now =
            storage::from_ms(static_cast<double>(tick) * kTickMinutes *
                             60.0 * 1000.0);

        // ---- Multithreaded op burst (cache + SSD), then quiesce.
        std::vector<std::thread> workers;
        workers.reserve(opt.threads);
        for (std::size_t t = 0; t < opt.threads; ++t) {
            workers.emplace_back([&, t, tick] {
                util::Rng wrng{opt.seed + tick * 131ULL + t};
                for (std::size_t op = 0; op < opt.ops_per_thread; ++op) {
                    const auto id = static_cast<std::uint32_t>(
                        wrng.uniform_index(kIdSpace));
                    const double roll = wrng.uniform();
                    if (roll < 0.55) {
                        (void)cache->lookup(id);
                        (void)cache->probe(id);
                    } else if (roll < 0.75) {
                        cache->on_miss_fetched(id, wrng.uniform());
                    } else if (roll < 0.85) {
                        const std::uint32_t nb[] = {id + 1, id + 7, id + 21};
                        cache->update_homophily(id, nb);
                    } else if (roll < 0.92) {
                        cache->update_importance_score(id, wrng.uniform());
                    } else if (roll < 0.97) {
                        if (!ssd->fetch(id)) ssd->insert(id);
                    } else {
                        (void)cache->find_resident_if(
                            id, [](std::uint32_t) { return true; });
                    }
                }
            });
        }
        for (auto& w : workers) w.join();
        total_ops += opt.threads * opt.ops_per_thread;

        // ---- Freeze-oracle invariant check at the quiesced point.
        const auto frozen = cache->freeze();
        const std::vector<std::string> violations = check_invariants(frozen);
        ++freeze_checks;
        if (!violations.empty()) {
            std::cerr << "spider_chaos: tick " << tick << " ("
                      << storage::to_ms(now) << " virtual ms): "
                      << violations.size() << " invariant violation(s)\n";
            for (const auto& v : violations) std::cerr << "  " << v << '\n';
            return 1;
        }

        // ---- Weather bookkeeping + twin determinism probe.
        const storage::WeatherState state = weather.weather_state(now);
        if (state == storage::WeatherState::kDegraded) ++slots_degraded;
        if (state == storage::WeatherState::kOutage) ++slots_outage;
        if (tick % 16 == 0) {
            for (int probe = 0; probe < 32; ++probe) {
                const auto slot = rng.uniform_index(ticks * 120ULL);
                if (weather.weather_state_at_slot(slot) !=
                    weather_twin.weather_state_at_slot(slot)) {
                    std::cerr << "spider_chaos: weather chain diverged at "
                                 "slot " << slot << '\n';
                    return 1;
                }
                const auto id = static_cast<std::uint32_t>(
                    rng.uniform_index(kIdSpace));
                const auto a = weather.evaluate(id, 0, now);
                const auto b = weather_twin.evaluate(id, 0, now);
                if (a.kind != b.kind || a.latency != b.latency) {
                    std::cerr << "spider_chaos: fault draw diverged for id "
                              << id << " at tick " << tick << '\n';
                    return 1;
                }
                ++weather_probes;
            }
        }

        // ---- Cluster traffic + occasional membership churn.
        const auto active = cluster.active_nodes();
        for (int i = 0; i < 48; ++i) {
            const std::uint32_t node = active[rng.uniform_index(
                active.size())];
            const auto id = static_cast<std::uint32_t>(
                rng.uniform_index(dataset.size()));
            (void)cluster.service(node, id, now);
        }
        cluster.on_batch_end(now);
        if (rng.uniform() < 0.10) {
            if (cluster.num_nodes() <= 2 ||
                (cluster.num_nodes() < 6 && rng.uniform() < 0.5)) {
                (void)cluster.add_node();
            } else {
                cluster.remove_node(cluster.active_nodes().back());
            }
            ++churn_events;
        }

        // ---- Elastic repartition flip.
        if (rng.uniform() < 0.25) {
            cache->set_imp_ratio(0.05 + 0.90 * rng.uniform());
            ++elastic_flips;
        }

        // ---- Kill -9 + warm restart through the WAL, with a different
        // shard count. Everything appended since the last flush point is
        // lost (drop_unflushed), exactly like a real unclean death.
        if (rng.uniform() < 0.06) {
            const std::size_t pre = cache->importance_size() +
                                    cache->homophily_size() +
                                    ssd->resident_items();
            wal.drop_unflushed();
            const std::size_t shards =
                shard_choices[rng.uniform_index(4)];
            cache = std::make_unique<cache::TwoLayerSemanticCache>(
                kCacheCapacity, 0.6, shards, /*lockfree_reads=*/true);
            ssd = std::make_unique<storage::SsdTier>(
                storage::SsdTierConfig{.enabled = true,
                                       .capacity_items = kSsdCapacity});
            const cache::RestoreImage image = wal.load();
            std::size_t restored = cache->restore_from_wal(image);
            restored += ssd->restore(image.ssd);
            attach();
            ++kills;
            restored_total += restored;
            if (pre > 0 && restored * 2 < pre) {
                std::cerr << "spider_chaos: warm restart at tick " << tick
                          << " recovered only " << restored << "/" << pre
                          << " resident items (< 50%)\n";
                return 1;
            }
            // The restored state must itself satisfy the invariants.
            const auto post = check_invariants(cache->freeze());
            if (!post.empty()) {
                std::cerr << "spider_chaos: restored cache violates "
                          << post.size() << " invariant(s) at tick "
                          << tick << '\n';
                for (const auto& v : post) std::cerr << "  " << v << '\n';
                return 1;
            }
        }

        // ---- Stable point: flush the tail every tick, compact the WAL
        // into a snapshot every 8th (also reconciling the un-streamed
        // elastic-repartition evictions and SSD recency drift).
        if ((tick + 1) % 8 == 0) {
            cache::RestoreImage image = cache->dump_residency();
            image.ssd = ssd->dump_residency();
            wal.compact(image);
        } else {
            wal.flush();
        }
    }

    std::filesystem::remove_all(opt.wal_dir);
    std::cout << "spider_chaos: survived " << opt.hours
              << " virtual hours (" << ticks << " ticks, " << total_ops
              << " cache ops)\n"
              << "  freeze checks     " << freeze_checks
              << " (0 violations)\n"
              << "  kills / restarts  " << kills << " (" << restored_total
              << " items recovered, >= 50% each)\n"
              << "  elastic flips     " << elastic_flips << "\n"
              << "  cluster churn     " << churn_events << " (final "
              << cluster.num_nodes() << " nodes)\n"
              << "  weather           " << slots_degraded
              << " degraded / " << slots_outage << " outage ticks, "
              << weather_probes << " twin probes consistent\n"
              << "  wal               " << wal.appended_records()
              << " records appended, " << wal.dropped_records()
              << " dropped at last load\n";
    return 0;
}
