# Empty compiler generated dependencies file for tool_strategy_sweep.
# This may be replaced when dependencies are built.
