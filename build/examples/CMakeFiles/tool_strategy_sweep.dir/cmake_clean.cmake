file(REMOVE_RECURSE
  "CMakeFiles/tool_strategy_sweep.dir/__/tools/diag.cpp.o"
  "CMakeFiles/tool_strategy_sweep.dir/__/tools/diag.cpp.o.d"
  "tool_strategy_sweep"
  "tool_strategy_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tool_strategy_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
