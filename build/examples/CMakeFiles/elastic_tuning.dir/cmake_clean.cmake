file(REMOVE_RECURSE
  "CMakeFiles/elastic_tuning.dir/elastic_tuning.cpp.o"
  "CMakeFiles/elastic_tuning.dir/elastic_tuning.cpp.o.d"
  "elastic_tuning"
  "elastic_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/elastic_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
