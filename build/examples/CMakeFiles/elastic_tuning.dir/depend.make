# Empty dependencies file for elastic_tuning.
# This may be replaced when dependencies are built.
