# Empty dependencies file for custom_loop.
# This may be replaced when dependencies are built.
