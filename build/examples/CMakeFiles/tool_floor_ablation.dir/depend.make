# Empty dependencies file for tool_floor_ablation.
# This may be replaced when dependencies are built.
