file(REMOVE_RECURSE
  "CMakeFiles/tool_floor_ablation.dir/__/tools/diag3.cpp.o"
  "CMakeFiles/tool_floor_ablation.dir/__/tools/diag3.cpp.o.d"
  "tool_floor_ablation"
  "tool_floor_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tool_floor_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
