file(REMOVE_RECURSE
  "CMakeFiles/imagenet_training.dir/imagenet_training.cpp.o"
  "CMakeFiles/imagenet_training.dir/imagenet_training.cpp.o.d"
  "imagenet_training"
  "imagenet_training.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/imagenet_training.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
