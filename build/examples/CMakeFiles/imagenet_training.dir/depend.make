# Empty dependencies file for imagenet_training.
# This may be replaced when dependencies are built.
