# Empty compiler generated dependencies file for tool_spider_introspect.
# This may be replaced when dependencies are built.
