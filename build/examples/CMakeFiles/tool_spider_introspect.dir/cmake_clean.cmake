file(REMOVE_RECURSE
  "CMakeFiles/tool_spider_introspect.dir/__/tools/diag2.cpp.o"
  "CMakeFiles/tool_spider_introspect.dir/__/tools/diag2.cpp.o.d"
  "tool_spider_introspect"
  "tool_spider_introspect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tool_spider_introspect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
