# Empty compiler generated dependencies file for tool_icache_debug.
# This may be replaced when dependencies are built.
