file(REMOVE_RECURSE
  "CMakeFiles/tool_icache_debug.dir/__/tools/diag4.cpp.o"
  "CMakeFiles/tool_icache_debug.dir/__/tools/diag4.cpp.o.d"
  "tool_icache_debug"
  "tool_icache_debug.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tool_icache_debug.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
