file(REMOVE_RECURSE
  "libspider_tensor.a"
)
