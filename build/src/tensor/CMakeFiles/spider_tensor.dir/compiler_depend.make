# Empty compiler generated dependencies file for spider_tensor.
# This may be replaced when dependencies are built.
