file(REMOVE_RECURSE
  "CMakeFiles/spider_tensor.dir/matrix.cpp.o"
  "CMakeFiles/spider_tensor.dir/matrix.cpp.o.d"
  "CMakeFiles/spider_tensor.dir/ops.cpp.o"
  "CMakeFiles/spider_tensor.dir/ops.cpp.o.d"
  "CMakeFiles/spider_tensor.dir/pca.cpp.o"
  "CMakeFiles/spider_tensor.dir/pca.cpp.o.d"
  "libspider_tensor.a"
  "libspider_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spider_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
