file(REMOVE_RECURSE
  "CMakeFiles/spider_core.dir/elastic.cpp.o"
  "CMakeFiles/spider_core.dir/elastic.cpp.o.d"
  "CMakeFiles/spider_core.dir/graph_scorer.cpp.o"
  "CMakeFiles/spider_core.dir/graph_scorer.cpp.o.d"
  "CMakeFiles/spider_core.dir/pipeline.cpp.o"
  "CMakeFiles/spider_core.dir/pipeline.cpp.o.d"
  "CMakeFiles/spider_core.dir/samplers.cpp.o"
  "CMakeFiles/spider_core.dir/samplers.cpp.o.d"
  "CMakeFiles/spider_core.dir/spider_cache.cpp.o"
  "CMakeFiles/spider_core.dir/spider_cache.cpp.o.d"
  "libspider_core.a"
  "libspider_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spider_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
