file(REMOVE_RECURSE
  "CMakeFiles/spider_data.dir/dataset.cpp.o"
  "CMakeFiles/spider_data.dir/dataset.cpp.o.d"
  "CMakeFiles/spider_data.dir/presets.cpp.o"
  "CMakeFiles/spider_data.dir/presets.cpp.o.d"
  "libspider_data.a"
  "libspider_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spider_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
