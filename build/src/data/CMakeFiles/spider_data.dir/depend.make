# Empty dependencies file for spider_data.
# This may be replaced when dependencies are built.
