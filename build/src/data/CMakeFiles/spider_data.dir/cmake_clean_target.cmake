file(REMOVE_RECURSE
  "libspider_data.a"
)
