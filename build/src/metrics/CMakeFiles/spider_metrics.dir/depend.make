# Empty dependencies file for spider_metrics.
# This may be replaced when dependencies are built.
