file(REMOVE_RECURSE
  "libspider_metrics.a"
)
