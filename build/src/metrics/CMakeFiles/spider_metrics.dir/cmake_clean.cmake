file(REMOVE_RECURSE
  "CMakeFiles/spider_metrics.dir/export.cpp.o"
  "CMakeFiles/spider_metrics.dir/export.cpp.o.d"
  "CMakeFiles/spider_metrics.dir/metrics.cpp.o"
  "CMakeFiles/spider_metrics.dir/metrics.cpp.o.d"
  "libspider_metrics.a"
  "libspider_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spider_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
