file(REMOVE_RECURSE
  "CMakeFiles/spider_storage.dir/cache_store.cpp.o"
  "CMakeFiles/spider_storage.dir/cache_store.cpp.o.d"
  "CMakeFiles/spider_storage.dir/clock.cpp.o"
  "CMakeFiles/spider_storage.dir/clock.cpp.o.d"
  "CMakeFiles/spider_storage.dir/remote_store.cpp.o"
  "CMakeFiles/spider_storage.dir/remote_store.cpp.o.d"
  "CMakeFiles/spider_storage.dir/ssd_tier.cpp.o"
  "CMakeFiles/spider_storage.dir/ssd_tier.cpp.o.d"
  "libspider_storage.a"
  "libspider_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spider_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
