
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/storage/cache_store.cpp" "src/storage/CMakeFiles/spider_storage.dir/cache_store.cpp.o" "gcc" "src/storage/CMakeFiles/spider_storage.dir/cache_store.cpp.o.d"
  "/root/repo/src/storage/clock.cpp" "src/storage/CMakeFiles/spider_storage.dir/clock.cpp.o" "gcc" "src/storage/CMakeFiles/spider_storage.dir/clock.cpp.o.d"
  "/root/repo/src/storage/remote_store.cpp" "src/storage/CMakeFiles/spider_storage.dir/remote_store.cpp.o" "gcc" "src/storage/CMakeFiles/spider_storage.dir/remote_store.cpp.o.d"
  "/root/repo/src/storage/ssd_tier.cpp" "src/storage/CMakeFiles/spider_storage.dir/ssd_tier.cpp.o" "gcc" "src/storage/CMakeFiles/spider_storage.dir/ssd_tier.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cache/CMakeFiles/spider_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/spider_data.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/spider_util.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/spider_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
