file(REMOVE_RECURSE
  "libspider_cache.a"
)
