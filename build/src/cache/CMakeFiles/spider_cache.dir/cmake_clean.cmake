file(REMOVE_RECURSE
  "CMakeFiles/spider_cache.dir/basic_policies.cpp.o"
  "CMakeFiles/spider_cache.dir/basic_policies.cpp.o.d"
  "CMakeFiles/spider_cache.dir/homophily_cache.cpp.o"
  "CMakeFiles/spider_cache.dir/homophily_cache.cpp.o.d"
  "CMakeFiles/spider_cache.dir/importance_cache.cpp.o"
  "CMakeFiles/spider_cache.dir/importance_cache.cpp.o.d"
  "CMakeFiles/spider_cache.dir/semantic_cache.cpp.o"
  "CMakeFiles/spider_cache.dir/semantic_cache.cpp.o.d"
  "libspider_cache.a"
  "libspider_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spider_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
