
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cache/basic_policies.cpp" "src/cache/CMakeFiles/spider_cache.dir/basic_policies.cpp.o" "gcc" "src/cache/CMakeFiles/spider_cache.dir/basic_policies.cpp.o.d"
  "/root/repo/src/cache/homophily_cache.cpp" "src/cache/CMakeFiles/spider_cache.dir/homophily_cache.cpp.o" "gcc" "src/cache/CMakeFiles/spider_cache.dir/homophily_cache.cpp.o.d"
  "/root/repo/src/cache/importance_cache.cpp" "src/cache/CMakeFiles/spider_cache.dir/importance_cache.cpp.o" "gcc" "src/cache/CMakeFiles/spider_cache.dir/importance_cache.cpp.o.d"
  "/root/repo/src/cache/semantic_cache.cpp" "src/cache/CMakeFiles/spider_cache.dir/semantic_cache.cpp.o" "gcc" "src/cache/CMakeFiles/spider_cache.dir/semantic_cache.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/spider_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
