# Empty dependencies file for spider_cache.
# This may be replaced when dependencies are built.
