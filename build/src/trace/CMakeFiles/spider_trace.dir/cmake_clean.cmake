file(REMOVE_RECURSE
  "CMakeFiles/spider_trace.dir/replay.cpp.o"
  "CMakeFiles/spider_trace.dir/replay.cpp.o.d"
  "CMakeFiles/spider_trace.dir/reuse_distance.cpp.o"
  "CMakeFiles/spider_trace.dir/reuse_distance.cpp.o.d"
  "CMakeFiles/spider_trace.dir/trace.cpp.o"
  "CMakeFiles/spider_trace.dir/trace.cpp.o.d"
  "libspider_trace.a"
  "libspider_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spider_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
