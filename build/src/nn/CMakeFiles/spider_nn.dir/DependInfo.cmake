
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/layers.cpp" "src/nn/CMakeFiles/spider_nn.dir/layers.cpp.o" "gcc" "src/nn/CMakeFiles/spider_nn.dir/layers.cpp.o.d"
  "/root/repo/src/nn/mlp_classifier.cpp" "src/nn/CMakeFiles/spider_nn.dir/mlp_classifier.cpp.o" "gcc" "src/nn/CMakeFiles/spider_nn.dir/mlp_classifier.cpp.o.d"
  "/root/repo/src/nn/model_profile.cpp" "src/nn/CMakeFiles/spider_nn.dir/model_profile.cpp.o" "gcc" "src/nn/CMakeFiles/spider_nn.dir/model_profile.cpp.o.d"
  "/root/repo/src/nn/optimizer.cpp" "src/nn/CMakeFiles/spider_nn.dir/optimizer.cpp.o" "gcc" "src/nn/CMakeFiles/spider_nn.dir/optimizer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tensor/CMakeFiles/spider_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/spider_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
