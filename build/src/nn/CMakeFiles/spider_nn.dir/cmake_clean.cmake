file(REMOVE_RECURSE
  "CMakeFiles/spider_nn.dir/layers.cpp.o"
  "CMakeFiles/spider_nn.dir/layers.cpp.o.d"
  "CMakeFiles/spider_nn.dir/mlp_classifier.cpp.o"
  "CMakeFiles/spider_nn.dir/mlp_classifier.cpp.o.d"
  "CMakeFiles/spider_nn.dir/model_profile.cpp.o"
  "CMakeFiles/spider_nn.dir/model_profile.cpp.o.d"
  "CMakeFiles/spider_nn.dir/optimizer.cpp.o"
  "CMakeFiles/spider_nn.dir/optimizer.cpp.o.d"
  "libspider_nn.a"
  "libspider_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spider_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
