# Empty dependencies file for spider_nn.
# This may be replaced when dependencies are built.
