file(REMOVE_RECURSE
  "libspider_nn.a"
)
