file(REMOVE_RECURSE
  "libspider_ann.a"
)
