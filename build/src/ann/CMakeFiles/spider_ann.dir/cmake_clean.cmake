file(REMOVE_RECURSE
  "CMakeFiles/spider_ann.dir/bruteforce.cpp.o"
  "CMakeFiles/spider_ann.dir/bruteforce.cpp.o.d"
  "CMakeFiles/spider_ann.dir/hnsw.cpp.o"
  "CMakeFiles/spider_ann.dir/hnsw.cpp.o.d"
  "CMakeFiles/spider_ann.dir/index_size.cpp.o"
  "CMakeFiles/spider_ann.dir/index_size.cpp.o.d"
  "CMakeFiles/spider_ann.dir/pq.cpp.o"
  "CMakeFiles/spider_ann.dir/pq.cpp.o.d"
  "CMakeFiles/spider_ann.dir/serialize.cpp.o"
  "CMakeFiles/spider_ann.dir/serialize.cpp.o.d"
  "libspider_ann.a"
  "libspider_ann.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spider_ann.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
