
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ann/bruteforce.cpp" "src/ann/CMakeFiles/spider_ann.dir/bruteforce.cpp.o" "gcc" "src/ann/CMakeFiles/spider_ann.dir/bruteforce.cpp.o.d"
  "/root/repo/src/ann/hnsw.cpp" "src/ann/CMakeFiles/spider_ann.dir/hnsw.cpp.o" "gcc" "src/ann/CMakeFiles/spider_ann.dir/hnsw.cpp.o.d"
  "/root/repo/src/ann/index_size.cpp" "src/ann/CMakeFiles/spider_ann.dir/index_size.cpp.o" "gcc" "src/ann/CMakeFiles/spider_ann.dir/index_size.cpp.o.d"
  "/root/repo/src/ann/pq.cpp" "src/ann/CMakeFiles/spider_ann.dir/pq.cpp.o" "gcc" "src/ann/CMakeFiles/spider_ann.dir/pq.cpp.o.d"
  "/root/repo/src/ann/serialize.cpp" "src/ann/CMakeFiles/spider_ann.dir/serialize.cpp.o" "gcc" "src/ann/CMakeFiles/spider_ann.dir/serialize.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tensor/CMakeFiles/spider_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/spider_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
