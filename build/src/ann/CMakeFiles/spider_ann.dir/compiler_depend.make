# Empty compiler generated dependencies file for spider_ann.
# This may be replaced when dependencies are built.
