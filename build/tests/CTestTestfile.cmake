# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/tensor_test[1]_include.cmake")
include("/root/repo/build/tests/nn_test[1]_include.cmake")
include("/root/repo/build/tests/ann_test[1]_include.cmake")
include("/root/repo/build/tests/pq_test[1]_include.cmake")
include("/root/repo/build/tests/data_test[1]_include.cmake")
include("/root/repo/build/tests/storage_test[1]_include.cmake")
include("/root/repo/build/tests/cache_test[1]_include.cmake")
include("/root/repo/build/tests/scorer_test[1]_include.cmake")
include("/root/repo/build/tests/sampler_test[1]_include.cmake")
include("/root/repo/build/tests/elastic_test[1]_include.cmake")
include("/root/repo/build/tests/pipeline_test[1]_include.cmake")
include("/root/repo/build/tests/spider_cache_test[1]_include.cmake")
include("/root/repo/build/tests/simulator_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/trace_test[1]_include.cmake")
include("/root/repo/build/tests/serialize_test[1]_include.cmake")
include("/root/repo/build/tests/ssd_tier_test[1]_include.cmake")
include("/root/repo/build/tests/nn_extra_test[1]_include.cmake")
include("/root/repo/build/tests/pca_test[1]_include.cmake")
include("/root/repo/build/tests/metrics_test[1]_include.cmake")
include("/root/repo/build/tests/config_test[1]_include.cmake")
