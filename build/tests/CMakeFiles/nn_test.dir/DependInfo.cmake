
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/nn_test.cpp" "tests/CMakeFiles/nn_test.dir/nn_test.cpp.o" "gcc" "tests/CMakeFiles/nn_test.dir/nn_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/spider_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/spider_core.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/spider_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/ann/CMakeFiles/spider_ann.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/spider_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/spider_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/spider_data.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/spider_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/spider_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/spider_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/spider_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
