# Empty dependencies file for spider_cache_test.
# This may be replaced when dependencies are built.
