file(REMOVE_RECURSE
  "CMakeFiles/spider_cache_test.dir/spider_cache_test.cpp.o"
  "CMakeFiles/spider_cache_test.dir/spider_cache_test.cpp.o.d"
  "spider_cache_test"
  "spider_cache_test.pdb"
  "spider_cache_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spider_cache_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
