file(REMOVE_RECURSE
  "CMakeFiles/nn_extra_test.dir/nn_extra_test.cpp.o"
  "CMakeFiles/nn_extra_test.dir/nn_extra_test.cpp.o.d"
  "nn_extra_test"
  "nn_extra_test.pdb"
  "nn_extra_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nn_extra_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
