file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_ann.dir/bench_micro_ann.cpp.o"
  "CMakeFiles/bench_micro_ann.dir/bench_micro_ann.cpp.o.d"
  "bench_micro_ann"
  "bench_micro_ann.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_ann.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
