# Empty dependencies file for bench_micro_ann.
# This may be replaced when dependencies are built.
