file(REMOVE_RECURSE
  "CMakeFiles/bench_fig_concepts.dir/bench_fig_concepts.cpp.o"
  "CMakeFiles/bench_fig_concepts.dir/bench_fig_concepts.cpp.o.d"
  "bench_fig_concepts"
  "bench_fig_concepts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig_concepts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
