# Empty compiler generated dependencies file for bench_fig_concepts.
# This may be replaced when dependencies are built.
