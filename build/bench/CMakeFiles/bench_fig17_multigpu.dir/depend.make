# Empty dependencies file for bench_fig17_multigpu.
# This may be replaced when dependencies are built.
