file(REMOVE_RECURSE
  "CMakeFiles/bench_fig17_multigpu.dir/bench_fig17_multigpu.cpp.o"
  "CMakeFiles/bench_fig17_multigpu.dir/bench_fig17_multigpu.cpp.o.d"
  "bench_fig17_multigpu"
  "bench_fig17_multigpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig17_multigpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
