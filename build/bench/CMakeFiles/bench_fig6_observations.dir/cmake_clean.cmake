file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_observations.dir/bench_fig6_observations.cpp.o"
  "CMakeFiles/bench_fig6_observations.dir/bench_fig6_observations.cpp.o.d"
  "bench_fig6_observations"
  "bench_fig6_observations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_observations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
