# Empty dependencies file for bench_fig6_observations.
# This may be replaced when dependencies are built.
