# Empty compiler generated dependencies file for bench_fig16_elastic.
# This may be replaced when dependencies are built.
